"""Parallel sharded generation, ingestion, and analysis.

Three engines share the same map-reduce discipline — partials merged in
a deterministic index order, workers recording no metrics, the driver
emitting canonical values — so outputs are byte-identical at any
``--jobs``:

* **generation** (:mod:`repro.parallel.generate`): map fixed
  study-window intervals over worker processes that simulate their
  interval's handshakes and write ``ssl-NN.log``/``x509-NN.log`` shard
  files directly — the in-order concatenation reproduces the serial
  dataset write-out byte for byte;
* **ingestion** (:mod:`repro.parallel.engine`): map shard files over
  worker processes, reduce with ``ChainUsage.merge`` into the exact
  chain map a serial pass yields;
* **analysis** (:mod:`repro.parallel.analysis`): partition the merged
  chain map by a stable hash of the chain key, enrich each partition
  (classify, categorise, eager ``ChainStructure``), merge in partition
  order.

All three (plus the scanner's ``scan_many``) dispatch through the
**supervised executor** (:mod:`repro.parallel.supervisor`): worker
crashes and hangs are absorbed by bounded retry on a rebuilt pool,
poison tasks are quarantined and recovered in-driver, and an attached
:class:`~repro.resilience.journal.RunJournal` makes a killed run
resumable at task granularity — all without touching the byte-identical
merge guarantee.  See ``docs/RESILIENCE.md`` ("Supervised execution").

See ``docs/PERFORMANCE.md`` for the three models and the determinism
guarantees, and ``benchmarks/test_generate_scaling.py`` /
``benchmarks/test_parallel_scaling.py`` /
``benchmarks/test_analysis_scaling.py`` for the tracked speedup numbers.
"""

from .analysis import (
    AnalysisPartial,
    AnalysisTask,
    EnrichedChains,
    analyze_partitions,
    effective_analysis_jobs,
    partition_index,
    process_partition,
)
from .engine import IngestResult, ingest_logs, ingest_shards
from .generate import (
    GenerateResult,
    GenerateShardResult,
    GenerateTask,
    generate_dataset,
    process_generate_shard,
)
from .shards import ShardSpec, discover_shards, split_zeek_log
from .supervisor import (
    SupervisedRun,
    SupervisorConfig,
    SupervisorIncident,
    run_supervised,
)
from .worker import (
    ColumnarShardAggregate,
    ShardAggregate,
    ShardTask,
    process_shard,
    process_shard_columnar,
)

__all__ = [
    "AnalysisPartial",
    "AnalysisTask",
    "ColumnarShardAggregate",
    "EnrichedChains",
    "GenerateResult",
    "GenerateShardResult",
    "GenerateTask",
    "IngestResult",
    "ShardAggregate",
    "ShardSpec",
    "ShardTask",
    "SupervisedRun",
    "SupervisorConfig",
    "SupervisorIncident",
    "run_supervised",
    "analyze_partitions",
    "discover_shards",
    "effective_analysis_jobs",
    "generate_dataset",
    "ingest_logs",
    "ingest_shards",
    "partition_index",
    "process_generate_shard",
    "process_shard",
    "process_shard_columnar",
    "split_zeek_log",
]

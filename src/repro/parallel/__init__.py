"""Parallel sharded ingestion and analysis.

Two engines share the same map-reduce discipline — partials merged in a
deterministic index order, workers recording no metrics, the driver
emitting canonical values — so outputs are byte-identical at any
``--jobs``:

* **ingestion** (:mod:`repro.parallel.engine`): map shard files over
  worker processes, reduce with ``ChainUsage.merge`` into the exact
  chain map a serial pass yields;
* **analysis** (:mod:`repro.parallel.analysis`): partition the merged
  chain map by a stable hash of the chain key, enrich each partition
  (classify, categorise, eager ``ChainStructure``), merge in partition
  order.

See ``docs/PERFORMANCE.md`` for both models and the determinism
guarantees, and ``benchmarks/test_parallel_scaling.py`` /
``benchmarks/test_analysis_scaling.py`` for the tracked speedup numbers.
"""

from .analysis import (
    AnalysisPartial,
    AnalysisTask,
    EnrichedChains,
    analyze_partitions,
    partition_index,
    process_partition,
)
from .engine import IngestResult, ingest_logs, ingest_shards
from .shards import ShardSpec, discover_shards, split_zeek_log
from .worker import ShardAggregate, ShardTask, process_shard

__all__ = [
    "AnalysisPartial",
    "AnalysisTask",
    "EnrichedChains",
    "IngestResult",
    "ShardAggregate",
    "ShardSpec",
    "ShardTask",
    "analyze_partitions",
    "discover_shards",
    "ingest_logs",
    "ingest_shards",
    "partition_index",
    "process_partition",
    "process_shard",
    "split_zeek_log",
]

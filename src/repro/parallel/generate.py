"""Parallel deterministic dataset generation: stage 0 goes wide.

:func:`generate_dataset` partitions the 12-month study window into the
workload's :data:`~repro.campus.workload.GENERATION_SHARDS` fixed
intervals and dispatches one :func:`process_generate_shard` call per
interval across a ``ProcessPoolExecutor`` (``jobs=1`` runs inline — no
pool, no pickling).  Each worker simulates its interval's handshakes and
writes its ``ssl-NN.log`` shard plus an x509 piece directly; the driver
concatenates the pieces into one broadcast ``x509.log`` — the layout the
ingestion engine's ``--shard-dir`` discovery pairs with zero
re-splitting, closing a fully parallel generate → ingest → analyze loop.
(Certificates are de-duplicated corpus-wide, so a shard's SSL rows may
reference certificates a *different* interval introduced — per-shard
x509 files would leave every ingestion worker's join incomplete, which
is why the certificate log is broadcast rather than paired 1:1.)

**Determinism.**  The shard files are byte-identical at any worker count,
and their in-order concatenation (data rows; every header is pinned via
``open_time``) is byte-identical to the serial
:func:`~repro.campus.dataset.build_campus_dataset` write-out:

* the interval layout is fixed — never derived from ``--jobs``;
* every (interval, spec) cell draws from its own derived RNG stream
  (``workload:{seed}:{shard}:{digest}``), so a cell's bytes depend on
  nothing generated before it;
* the x509 corpus-wide first-appearance dedup is reproduced from the
  per-spec plans alone: a worker pre-seeds its seen-fingerprint set with
  every certificate some earlier interval introduces, so certificate
  rows land in exactly the piece (and order, and with the timestamp)
  the serial monitoring tap would have recorded them — and because every
  header is pinned, stitching piece 0's header block onto the in-order
  data rows reproduces the serial ``x509.log`` byte for byte;
* workers leave no direct metrics behind (their observations are
  captured into telemetry and restored away — see
  :mod:`repro.obs.sink`); the driver replays canonical
  ``repro_zeek_rows_total`` / ``repro_generate_*`` values from the
  returned tallies and attaches each shard's telemetry in interval
  order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from ..campus.profiles import ScaleConfig
from ..campus.workload import GENERATION_SHARDS, STUDY_START
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.sink import WorkerTelemetry, capture_telemetry, get_sink
from ..obs.tracing import trace_span
from ..faults.plan import active_plan
from ..resilience.checkpoint import input_fingerprint
from ..zeek.format import ZeekLogWriter
from .pool import clamp_jobs
from ..zeek.records import (SSLRecord, X509Record, ssl_record_from_connection,
                            x509_record_from_certificate)
from .shards import ShardSpec
from .supervisor import (SupervisedRun, SupervisorConfig, resolve_config,
                         run_supervised)

__all__ = ["GenerateTask", "GenerateShardResult", "GenerateResult",
           "generate_dataset", "process_generate_shard"]

log = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class GenerateTask:
    """Everything a worker needs, picklable for the process pool."""

    shard: int
    seed: int | str
    scale: ScaleConfig
    ssl_path: str
    x509_path: str
    open_time: datetime = STUDY_START
    compiled: bool = True


@dataclass(slots=True)
class GenerateShardResult:
    """One interval's write-out tallies — the unit the driver reduces."""

    shard: int
    ssl_path: str
    x509_path: str
    ssl_rows: int = 0
    x509_rows: int = 0
    seconds: float = 0.0
    #: What this worker observed, attached to the driver sink on merge.
    telemetry: Optional[WorkerTelemetry] = None


@dataclass
class GenerateResult:
    """The merged outcome of one parallel (or inline) generation run."""

    out_dir: str
    #: Shard pairs in interval order (every one sharing the broadcast
    #: ``x509.log``), ready for ``ingest_shards``.
    shards: List[ShardSpec] = field(default_factory=list)
    x509_path: str = ""
    ssl_rows: int = 0
    x509_rows: int = 0
    #: The worker count actually used (requested, clamped to CPU count
    #: and shard count) and the caller's pre-clamp request.
    jobs: int = 1
    requested_jobs: int = 1
    shard_count: int = 0
    #: How the supervised dispatch went (incidents, retries, replays).
    supervisor: Optional[SupervisedRun] = None


#: Per-process context memo: (seed, scale) -> (context, plans).  Pool
#: workers process several intervals each; the PKI/population build and
#: the per-spec plans are identical for all of them, so pay once.
_CONTEXT_CACHE: Dict[tuple, tuple] = {}


def _context_for(seed: int | str, scale: ScaleConfig):
    from ..campus.dataset import build_generation_context

    key = (seed, scale)
    cached = _CONTEXT_CACHE.get(key)
    if cached is None:
        context = build_generation_context(seed=seed, scale=scale)
        plans = [context.generator.plan_for(spec) for spec in context.specs]
        cached = (context, plans)
        _CONTEXT_CACHE.clear()  # one live context per worker is plenty
        _CONTEXT_CACHE[key] = cached
    return cached


def _preseeded_fingerprints(specs, plans, shard: int) -> set:
    """Certificates some interval before ``shard`` already introduced.

    Walks earlier intervals in generation order (interval-major, then
    spec order, then chain order) marking every certificate presented by
    a cell with at least one monitor-visible connection — exactly the
    first-appearance order of the serial monitoring tap, recovered from
    the cheap per-spec plans without simulating anything.
    """
    seen: set = set()
    for earlier in range(shard):
        for spec, plan in zip(specs, plans):
            if earlier in plan.visible_shards:
                for certificate in spec.chain:
                    seen.add(certificate.fingerprint)
    return seen


def process_generate_shard(task: GenerateTask) -> GenerateShardResult:
    """Simulate one study-window interval and write its shard logs.

    Streams connection records straight into the two log writers: the
    SSL row per connection, and an X509 row for each certificate not
    introduced by an earlier interval (or earlier in this one) —
    timestamped, like the serial tap, with the first presenting
    connection's timestamp.
    """
    start = time.perf_counter()
    result = GenerateShardResult(shard=task.shard, ssl_path=task.ssl_path,
                                 x509_path=task.x509_path)
    with capture_telemetry("generate", task.shard) as telemetry, \
            trace_span("generate_shard", shard=task.shard):
        context, plans = _context_for(task.seed, task.scale)
        specs = context.specs
        generator = context.generator
        seen = _preseeded_fingerprints(specs, plans, task.shard)
        with open(task.ssl_path, "w", encoding="utf-8") as ssl_handle, \
                open(task.x509_path, "w", encoding="utf-8") as x509_handle:
            with ZeekLogWriter(ssl_handle, "ssl", SSLRecord.FIELDS,
                               SSLRecord.TYPES, open_time=task.open_time,
                               compiled=task.compiled) as ssl_writer, \
                    ZeekLogWriter(x509_handle, "x509", X509Record.FIELDS,
                                  X509Record.TYPES, open_time=task.open_time,
                                  compiled=task.compiled) as x509_writer:
                for record in generator.generate_shard(specs, task.shard,
                                                       plans=plans):
                    ssl_writer.write_row(
                        ssl_record_from_connection(record).to_row())
                    result.ssl_rows += 1
                    for certificate in record.chain:
                        fingerprint = certificate.fingerprint
                        if fingerprint not in seen:
                            seen.add(fingerprint)
                            x509_writer.write_row(x509_record_from_certificate(
                                certificate, record.timestamp).to_row())
                            result.x509_rows += 1
    result.telemetry = telemetry
    result.seconds = time.perf_counter() - start
    return result


def _generate_fingerprint(task: GenerateTask) -> str:
    """Journal identity of one generation interval."""
    return input_fingerprint([
        "generate-shard", task.shard, task.seed, task.scale,
        task.open_time, task.compiled, task.ssl_path, task.x509_path,
    ])


def _generate_partial_valid(task: GenerateTask,
                            partial: GenerateShardResult) -> bool:
    """A journaled generation partial is only as good as its files.

    The payload is just tallies — the real output is the shard pair on
    disk, so a replay is vetoed (and the interval regenerated) when
    either file has vanished since the journaled run was killed.
    """
    return (os.path.exists(partial.ssl_path)
            and os.path.exists(partial.x509_path))


def generate_dataset(out_dir: str, *,
                     seed: int | str = 0,
                     scale: ScaleConfig,
                     jobs: Optional[int] = None,
                     open_time: datetime = STUDY_START,
                     compiled: bool = True,
                     supervise: Optional[SupervisorConfig] = None
                     ) -> GenerateResult:
    """Generate the (seed, scale) dataset as paired shard logs.

    ``jobs=None`` uses ``os.cpu_count()``; the effective count is capped
    at the CPU count and the fixed interval count (the request and the
    clamped value are both recorded on the result).  Output is
    ``ssl-NN.log`` shards plus one broadcast ``x509.log`` under
    ``out_dir`` — the layout
    :func:`~repro.parallel.shards.discover_shards` pairs directly.
    Dispatch runs through the supervised executor (``supervise`` tunes
    deadlines/retries/journaling); every shard's bytes are a pure
    function of (seed, scale, interval), so a retried or journal-
    replayed interval writes/keeps exactly the bytes an undisturbed
    worker would have.
    """
    os.makedirs(out_dir, exist_ok=True)
    shard_count = GENERATION_SHARDS
    requested, jobs = clamp_jobs(jobs, shard_count)
    tasks = [GenerateTask(shard=shard, seed=seed, scale=scale,
                          ssl_path=os.path.join(out_dir,
                                                f"ssl-{shard:02d}.log"),
                          x509_path=os.path.join(out_dir,
                                                 f".x509-{shard:02d}.part"),
                          open_time=open_time, compiled=compiled)
             for shard in range(shard_count)]
    config = resolve_config(supervise, plan=active_plan())
    with trace_span("parallel_generate", shards=shard_count, jobs=jobs):
        outcome = run_supervised(
            "generate", tasks, process_generate_shard, jobs=jobs,
            config=config,
            task_ids=lambda task, i: f"generate:{task.shard:04d}",
            fingerprint_fn=_generate_fingerprint,
            validate_fn=_generate_partial_valid)
        partials = [p for p in outcome.results if p is not None]
        x509_path = _merge_x509(out_dir, partials,
                                keep_pieces=config.journal is not None)
    result = _reduce(out_dir, partials, jobs=jobs, x509_path=x509_path)
    result.supervisor = outcome
    result.requested_jobs = requested
    log.debug("parallel generate complete", extra=kv(
        shards=shard_count, jobs=jobs, requested_jobs=requested,
        ssl_rows=result.ssl_rows, x509_rows=result.x509_rows))
    return result


def _merge_x509(out_dir: str, partials: List[GenerateShardResult], *,
                keep_pieces: bool = False) -> str:
    """Stitch the per-interval x509 pieces into one broadcast log.

    Piece headers are identical (pinned ``open_time``), so the merged
    log is piece 0's header block, every piece's data rows in interval
    order, and the shared ``#close`` footer — byte-identical to the
    serial ``x509.log``.  The intermediates (hidden ``.x509-NN.part``
    names that shard discovery never pairs) are removed afterwards —
    unless the run is journaled (``keep_pieces``): a ``--resume`` replay
    validates each interval against its piece file, so deleting them
    would force every interval to regenerate.
    """
    merged_path = os.path.join(out_dir, "x509.log")
    footer = ""
    with open(merged_path, "w", encoding="utf-8") as merged:
        for position, partial in enumerate(
                sorted(partials, key=lambda p: p.shard)):
            with open(partial.x509_path, "r", encoding="utf-8") as piece:
                for line in piece:
                    if not line.startswith("#"):
                        merged.write(line)
                    elif line.startswith("#close"):
                        footer = line
                    elif position == 0:
                        merged.write(line)
        merged.write(footer)
    if not keep_pieces:
        for partial in partials:
            os.remove(partial.x509_path)
    return merged_path


def _reduce(out_dir: str, partials: List[GenerateShardResult], *,
            jobs: int, x509_path: str) -> GenerateResult:
    """Fold partials in interval order; emit the canonical metrics."""
    result = GenerateResult(out_dir=out_dir, jobs=jobs,
                            shard_count=len(partials), x509_path=x509_path)
    sink = get_sink()
    for partial in sorted(partials, key=lambda p: p.shard):
        sink.attach(partial.telemetry)
        result.shards.append(ShardSpec(index=partial.shard,
                                       ssl_path=partial.ssl_path,
                                       x509_path=x509_path))
        result.ssl_rows += partial.ssl_rows
        result.x509_rows += partial.x509_rows
        # Canonical write metrics, exactly as the serial writers would
        # have recorded them (one labelled inc per non-empty log).
        if partial.ssl_rows:
            instruments.ZEEK_ROWS.inc(partial.ssl_rows,
                                      direction="written", path="ssl")
        if partial.x509_rows:
            instruments.ZEEK_ROWS.inc(partial.x509_rows,
                                      direction="written", path="x509")
        instruments.GENERATE_SHARDS.inc(outcome="ok")
        instruments.GENERATE_SHARD_SECONDS.observe(partial.seconds)
    instruments.GENERATE_WORKERS.set(jobs)
    return result

"""Parallel chain enrichment: partition the chain map, fan out, merge.

The Figure-2 enrichment stages after interception — certificate
classification, chain categorisation, and eager ``ChainStructure``
computation for every multi-certificate chain — are embarrassingly
parallel: each chain's verdicts depend only on the chain itself, the
trust-store registry, the cross-sign disclosures, and the (already
computed, driver-side) interception name keys.  This module fans those
stages out across worker processes and merges the partial results into
exactly what a serial pass produces.

**Determinism.**  The merged enrichment is byte-identical to a serial
pass at any ``jobs`` value:

* chains are assigned to partitions by a *stable* hash of the chain key
  (BLAKE2b, never Python's randomised ``hash``), and the partition count
  is independent of ``jobs`` — so the work split, and therefore every
  per-partition draw, is a pure function of the corpus;
* partials are merged strictly in partition-index order, and the driver
  reassembles category lists / the hybrid report by walking the original
  chain map in its insertion order — worker completion order never leaks
  into any output ordering;
* workers leave no direct metrics behind (their observations are
  captured into telemetry and restored away, then attached to the
  driver sink in partition order — see :mod:`repro.obs.sink`); the
  driver derives the canonical ``repro_analysis_*`` counters from the
  merged totals, so counter exports are identical at any ``jobs`` (only
  the worker gauge and timing histograms vary).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.categorization import ChainCategorizer, ChainCategory
from ..core.chain import ObservedChain
from ..core.classification import CertificateClassifier, IssuerClass
from ..core.crosssign import CrossSignDisclosures
from ..core.hybrid import HybridAnalyzer, HybridChainAnalysis
from ..core.matching import ChainStructure, analyze_structure_pair
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.sink import WorkerTelemetry, capture_telemetry, get_sink
from ..obs.tracing import trace_span
from ..resilience.checkpoint import input_fingerprint
from ..truststores.registry import PublicDBRegistry
from .pool import clamp_jobs
from .supervisor import (SupervisedRun, SupervisorConfig, resolve_config,
                         run_supervised)

__all__ = [
    "AnalysisTask",
    "AnalysisPartial",
    "EnrichedChains",
    "partition_index",
    "process_partition",
    "analyze_partitions",
    "effective_analysis_jobs",
]

log = get_logger(__name__)

#: Default partition count.  Deliberately *not* tied to ``jobs``: the
#: partitioning (and every count derived from it) must be a pure function
#: of the corpus so runs at different ``--jobs`` are byte-identical, and a
#: fixed fan-out keeps the merge path exercised even on one worker.
DEFAULT_PARTITIONS = 8


def partition_index(key: Tuple[str, ...], partitions: int) -> int:
    """Stable chain-key → partition assignment.

    BLAKE2b over the joined fingerprints, reduced mod ``partitions`` —
    identical across processes, platforms, and interpreter restarts
    (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.blake2b("\x1f".join(key).encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % partitions


@dataclass(frozen=True, slots=True)
class AnalysisTask:
    """Everything one enrichment worker needs, picklable for the pool."""

    index: int
    chains: Tuple[ObservedChain, ...]
    registry: PublicDBRegistry
    disclosures: Optional[CrossSignDisclosures]
    interception_keys: FrozenSet[tuple]


@dataclass(slots=True)
class AnalysisPartial:
    """One partition's enrichment output — the unit the driver merges."""

    index: int
    #: (chain key, category) in this partition's chain order.
    categories: List[Tuple[Tuple[str, ...], ChainCategory]] = field(
        default_factory=list)
    #: Hybrid analyses keyed implicitly by ``analysis.chain.key``.
    hybrid: List[HybridChainAnalysis] = field(default_factory=list)
    #: chain key -> (require_leaf=True, require_leaf=False) structures.
    structures: Dict[Tuple[str, ...],
                     Tuple[ChainStructure, ChainStructure]] = field(
        default_factory=dict)
    #: certificate fingerprint -> issuer class, for classifier preload.
    classes: Dict[str, IssuerClass] = field(default_factory=dict)
    structures_built: int = 0
    seconds: float = 0.0
    #: What this worker observed, attached to the driver sink on merge.
    telemetry: Optional[WorkerTelemetry] = None


@dataclass
class EnrichedChains:
    """The merged, partition-order-independent enrichment of a chain map."""

    #: chain key -> category, covering every chain.
    categories: Dict[Tuple[str, ...], ChainCategory] = field(
        default_factory=dict)
    #: chain key -> hybrid analysis, covering exactly the hybrid chains.
    hybrid_by_key: Dict[Tuple[str, ...], HybridChainAnalysis] = field(
        default_factory=dict)
    #: chain key -> (with-leaf, without-leaf) structures, covering every
    #: multi-certificate chain.
    structures: Dict[Tuple[str, ...],
                     Tuple[ChainStructure, ChainStructure]] = field(
        default_factory=dict)
    #: certificate fingerprint -> issuer class, for classifier preload.
    classes: Dict[str, IssuerClass] = field(default_factory=dict)
    partitions: int = 0
    effective_jobs: int = 1
    #: How the supervised dispatch went (incidents, retries, replays).
    supervisor: Optional[SupervisedRun] = None


def process_partition(task: AnalysisTask) -> AnalysisPartial:
    """Enrich one partition: classify, categorise, build structures.

    Runs inside a worker process with metrics disabled (the driver emits
    the canonical values from the merged result).  Fresh classifier /
    categorizer / hybrid-analyzer instances per partition keep the work a
    pure function of the task.
    """
    start = time.perf_counter()
    partial = AnalysisPartial(index=task.index)
    with capture_telemetry("analysis", task.index) as telemetry, \
            trace_span("enrich_partition", partition=task.index,
                       chains=len(task.chains)):
        classifier = CertificateClassifier(task.registry)
        categorizer = ChainCategorizer(classifier,
                                       set(task.interception_keys))
        hybrid_analyzer = HybridAnalyzer(classifier, task.disclosures)
        for chain in task.chains:
            category = categorizer.category(chain)
            partial.categories.append((chain.key, category))
            structure_pair = None
            if chain.length > 1:
                structure_pair = analyze_structure_pair(
                    chain.certificates, disclosures=task.disclosures)
                partial.structures[chain.key] = structure_pair
                partial.structures_built += 2
            if category is ChainCategory.HYBRID:
                partial.hybrid.append(hybrid_analyzer.analyze_chain(
                    chain,
                    structure=structure_pair[0] if structure_pair else None))
        partial.classes = classifier.cached_classes()
    partial.telemetry = telemetry
    partial.seconds = time.perf_counter() - start
    return partial


def effective_analysis_jobs(jobs: int,
                            partitions: int = DEFAULT_PARTITIONS) -> int:
    """The worker count :func:`analyze_partitions` will actually use.

    The same clamp the engine applies (CPU count, partition count) —
    exposed so benchmarks and gates can distinguish "asked for 4 workers"
    from "physically ran 4 workers" on small machines, where asserting a
    multi-job speedup would be asserting against the hardware.
    """
    return clamp_jobs(jobs, partitions)[1]


def _partition_fingerprint(task: AnalysisTask) -> str:
    """Journal identity of one partition: its chain keys + name keys.

    The registry and disclosures are deliberately *not* fingerprinted
    (they do not pickle stably); a journal directory therefore belongs
    to one analyzer configuration — the CLI namespaces per-engine
    subdirectories under ``--run-journal`` for exactly that reason.
    """
    return input_fingerprint([
        "analysis-partition", task.index,
        tuple(chain.key for chain in task.chains),
        tuple(sorted(task.interception_keys)),
    ])


def analyze_partitions(chains: Dict[Tuple[str, ...], ObservedChain], *,
                       registry: PublicDBRegistry,
                       disclosures: Optional[CrossSignDisclosures] = None,
                       interception_keys: Optional[frozenset] = None,
                       jobs: int = 1,
                       partitions: Optional[int] = None,
                       supervise: Optional[SupervisorConfig] = None
                       ) -> EnrichedChains:
    """Fan the chain map out over a process pool and merge the partials.

    ``jobs`` bounds the pool size only; it is further clamped to the CPU
    count and the partition count (``jobs=1`` runs inline — no pool, no
    pickling).  ``partitions`` defaults to :data:`DEFAULT_PARTITIONS` and
    must be held constant for outputs to be comparable byte-for-byte —
    it never follows ``jobs``.  Dispatch runs through the supervised
    executor (``supervise`` tunes deadlines/retries/journaling); the
    merge folds partials in partition-index order regardless of which
    attempt produced them.
    """
    if partitions is None:
        partitions = DEFAULT_PARTITIONS
    partitions = max(1, partitions)
    keys = frozenset(interception_keys or ())
    buckets: List[List[ObservedChain]] = [[] for _ in range(partitions)]
    for key, chain in chains.items():
        buckets[partition_index(key, partitions)].append(chain)
    tasks = [AnalysisTask(index=i, chains=tuple(bucket), registry=registry,
                          disclosures=disclosures, interception_keys=keys)
             for i, bucket in enumerate(buckets)]
    effective = effective_analysis_jobs(jobs, partitions)
    from ..faults.plan import active_plan
    config = resolve_config(supervise, plan=active_plan())
    with trace_span("parallel_analysis", chains=len(chains),
                    partitions=partitions, jobs=effective):
        outcome = run_supervised(
            "analysis", tasks, process_partition, jobs=effective,
            config=config,
            task_ids=lambda task, i: f"analysis:{task.index:04d}",
            fingerprint_fn=_partition_fingerprint)
    partials = [p for p in outcome.results if p is not None]
    enriched = _reduce(partials, partitions=partitions,
                       effective_jobs=effective)
    enriched.supervisor = outcome
    log.debug("parallel analysis complete", extra=kv(
        chains=len(chains), partitions=partitions, jobs=effective,
        hybrid=len(enriched.hybrid_by_key),
        structures=len(enriched.structures)))
    return enriched


def _reduce(partials: List[AnalysisPartial], *, partitions: int,
            effective_jobs: int) -> EnrichedChains:
    """Merge partials in partition-index order; emit canonical metrics."""
    enriched = EnrichedChains(partitions=partitions,
                              effective_jobs=effective_jobs)
    structures_built = 0
    sink = get_sink()
    for partial in sorted(partials, key=lambda p: p.index):
        sink.attach(partial.telemetry)
        for key, category in partial.categories:
            enriched.categories[key] = category
        for analysis in partial.hybrid:
            enriched.hybrid_by_key[analysis.chain.key] = analysis
        enriched.structures.update(partial.structures)
        enriched.classes.update(partial.classes)
        structures_built += partial.structures_built
        instruments.ANALYSIS_PARTITIONS.inc(outcome="ok")
        instruments.ANALYSIS_PARTITION_SECONDS.observe(partial.seconds)
    instruments.ANALYSIS_WORKERS.set(effective_jobs)
    instruments.ANALYSIS_CHAINS.inc(len(enriched.categories),
                                    stage="categorize")
    instruments.ANALYSIS_CHAINS.inc(len(enriched.hybrid_by_key),
                                    stage="hybrid")
    instruments.ANALYSIS_STRUCTURES.inc(structures_built)
    return enriched

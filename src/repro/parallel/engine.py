"""The reduce side of parallel ingestion: fan out shards, merge partials.

:func:`ingest_shards` is the engine's entry point.  It dispatches one
:func:`~repro.parallel.worker.process_shard` call per shard across a
``ProcessPoolExecutor`` (``jobs=1`` runs inline — no pool, no pickling)
and folds the returned :class:`ShardAggregate` partials into a single
chain map with :meth:`ChainUsage.merge`.

**Determinism.**  The merged output is byte-identical to a serial pass
over the same shards regardless of worker count or completion order:

* partials are merged strictly in shard-index order, so the chain dict's
  insertion order — and every ``Counter``'s key order inside the usage
  accumulators — reproduces the order a single process would have
  produced scanning shard 0, then 1, …;
* workers leave no direct metrics behind (their observations are
  captured into telemetry and restored away — see
  :mod:`repro.obs.sink`); the driver derives the canonical
  ``repro_zeek_*`` / ``repro_chain_*`` values from the merged totals
  and attaches each shard's telemetry in shard order, so metric exports
  do not depend on ``--jobs`` either;
* fault-injection draws are keyed by (plan seed, line number) inside
  each shard file, independent of which worker reads it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.chain import ObservedChain
from ..core.packed import materialize_chains, unpack_shard_payload
from ..faults.plan import FaultPlan
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.sink import capture_telemetry, get_sink
from ..obs.tracing import trace_span
from ..resilience.checkpoint import input_fingerprint
from ..resilience.quarantine import Quarantine
from ..zeek.records import X509Record
from ..zeek.tap import reconstruct_certificate
from .pool import clamp_jobs
from .shards import ShardSpec
from .supervisor import (SupervisedRun, SupervisorConfig, resolve_config,
                         run_supervised)
from .worker import (ColumnarShardAggregate, ShardAggregate, ShardTask,
                     process_shard)

__all__ = ["IngestResult", "ingest_shards", "ingest_logs"]

log = get_logger(__name__)


@dataclass
class IngestResult:
    """The merged outcome of one parallel (or inline) ingest."""

    chains: Dict[Tuple[str, ...], ObservedChain] = field(default_factory=dict)
    #: Distinct certificate fingerprints, first-seen order across shards.
    cert_fingerprints: List[str] = field(default_factory=list)
    ssl_rows: int = 0
    x509_rows: int = 0
    joined: int = 0
    missing_certs: int = 0
    aggregated: int = 0
    skipped_empty: int = 0
    #: The worker count actually used (requested, clamped to CPU count and
    #: shard count).
    jobs: int = 1
    #: The worker count the caller asked for, before clamping.
    requested_jobs: int = 1
    shard_count: int = 0
    quarantine: Optional[Quarantine] = None
    #: How the supervised dispatch went (incidents, retries, replays).
    supervisor: Optional[SupervisedRun] = None


def _shard_fingerprint(task: ShardTask) -> str:
    """Journal identity of one shard task: paths, sizes, configuration."""
    def size(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return -1
    return input_fingerprint([
        "ingest-shard", task.index, task.ssl_path, size(task.ssl_path),
        task.x509_path, size(task.x509_path), task.plan, task.tolerant,
        task.compiled, task.columnar,
    ])


def ingest_shards(shards: Iterable[ShardSpec], *,
                  jobs: Optional[int] = None,
                  plan: Optional[FaultPlan] = None,
                  quarantine: Optional[Quarantine] = None,
                  compiled: bool = True,
                  columnar: bool = True,
                  supervise: Optional[SupervisorConfig] = None
                  ) -> IngestResult:
    """Map shards over a process pool and reduce to one chain map.

    ``jobs=None`` uses ``os.cpu_count()``; the effective count is capped
    at the CPU count (extra workers past the cores only add pool and
    pickling overhead — on a 1-CPU box ``--jobs 4`` used to run *slower*
    than serial for exactly that reason) and at the shard count (no idle
    workers).  The request and the clamped value are both recorded on the
    result (``requested_jobs`` / ``jobs``).  Passing a ``quarantine``
    switches every worker to tolerant reads, and the workers' captured
    records are replayed into it — in shard order — so the driver-side
    sink (and its metrics) end up exactly as a serial tolerant run's
    would.  Strict mode re-raises the first worker's
    :class:`~repro.zeek.format.ZeekFormatError` in the caller.

    Dispatch runs through :func:`~repro.parallel.supervisor.run_supervised`
    (``supervise`` tunes deadlines/retries/journaling): a worker crash or
    hang is retried on a rebuilt pool and, past the retry budget, the
    shard is quarantined and recovered in-driver — the merge still folds
    partials in shard-index order, so the output is byte-identical to an
    undisturbed run.

    ``columnar=True`` (the default) routes workers through the
    struct-of-arrays hot path: logs decode into typed columns, chain
    aggregation folds over arrays, and partials come home as packed
    column buffers that the driver materialises back into the legacy
    chain map before the same reduce (see :mod:`repro.core.packed`).
    ``columnar=False`` is the escape hatch back to the row-object
    workers (where ``compiled`` selects the row codec); outputs are
    byte-identical either way.
    """
    shard_list = sorted(shards, key=lambda spec: spec.index)
    requested, jobs = clamp_jobs(jobs, len(shard_list))
    tasks = [ShardTask(index=spec.index, ssl_path=spec.ssl_path,
                       x509_path=spec.x509_path, plan=plan,
                       tolerant=quarantine is not None, compiled=compiled,
                       columnar=columnar)
             for spec in shard_list]
    config = resolve_config(supervise, plan=plan, quarantine=quarantine)
    with trace_span("parallel_ingest", shards=len(tasks), jobs=jobs):
        outcome = run_supervised(
            "ingest", tasks, process_shard, jobs=jobs, config=config,
            task_ids=lambda task, i: f"ingest:{task.index:04d}",
            fingerprint_fn=_shard_fingerprint)
    aggregates = [a for a in outcome.results if a is not None]
    if columnar:
        aggregates = [_materialize_aggregate(a)
                      for a in sorted(aggregates, key=lambda a: a.index)]
    result = _reduce(aggregates, jobs=jobs, quarantine=quarantine)
    result.supervisor = outcome
    result.requested_jobs = requested
    log.debug("parallel ingest complete", extra=kv(
        shards=len(tasks), jobs=jobs, requested_jobs=requested,
        ssl_rows=result.ssl_rows, chains=len(result.chains)))
    return result


def ingest_logs(ssl_path: str, x509_path: str, *,
                jobs: Optional[int] = None,
                plan: Optional[FaultPlan] = None,
                quarantine: Optional[Quarantine] = None,
                compiled: bool = True,
                columnar: bool = True) -> IngestResult:
    """Ingest a single unsharded SSL/X509 pair through the same engine."""
    shard = ShardSpec(index=0, ssl_path=ssl_path, x509_path=x509_path)
    return ingest_shards([shard], jobs=jobs or 1, plan=plan,
                         quarantine=quarantine, compiled=compiled,
                         columnar=columnar)


def _materialize_aggregate(aggregate: ColumnarShardAggregate
                           ) -> ShardAggregate:
    """Unpack one columnar partial into the legacy aggregate shape.

    The rebuild (certificate reconstruction, DN parsing) churns the same
    memo caches a worker would have touched, so it runs under a
    *discarded* telemetry capture: the compiled path's workers capture
    that churn away and never replay it, and metric exports must not
    depend on which path — or which ``--jobs`` — produced the result.
    The canonical ``repro_columnar_*`` metrics are then emitted from the
    worker-reported stats, outside the shield.
    """
    with capture_telemetry("materialize", aggregate.index):
        columns = unpack_shard_payload(aggregate.payload)
        spec = columns.x509_columns
        records = [
            X509Record(
                ts=ts, fingerprint=fingerprint, certificate_version=version,
                certificate_serial=serial, certificate_subject=subject,
                certificate_issuer=issuer,
                certificate_not_valid_before=not_before,
                certificate_not_valid_after=not_after,
                certificate_key_alg=key_alg, certificate_sig_alg=sig_alg,
                certificate_key_length=key_length,
                san_dns=tuple(san or ()), basic_constraints_ca=bc_ca,
                basic_constraints_path_len=bc_path_len)
            for ts, fingerprint, version, serial, subject, issuer,
            not_before, not_after, key_alg, sig_alg, key_length, san,
            bc_ca, bc_path_len in zip(
                spec["ts"], spec["fingerprint"],
                spec["certificate.version"], spec["certificate.serial"],
                spec["certificate.subject"], spec["certificate.issuer"],
                spec["certificate.not_valid_before"],
                spec["certificate.not_valid_after"],
                spec["certificate.key_alg"], spec["certificate.sig_alg"],
                spec["certificate.key_length"], spec["san.dns"],
                spec["basic_constraints.ca"],
                spec["basic_constraints.path_len"])]
        certificates = {record.fingerprint: reconstruct_certificate(record)
                        for record in records}
        chains = materialize_chains(columns.chain_keys, columns.usages,
                                    certificates)
    instruments.COLUMNAR_PAYLOAD_BYTES.inc(len(aggregate.payload))
    for stats in (aggregate.x509_stats, aggregate.ssl_stats):
        if stats is not None:
            stats.emit()
    return ShardAggregate(
        index=aggregate.index, chains=chains,
        quarantined=aggregate.quarantined,
        cert_fingerprints=columns.cert_fingerprints,
        ssl_rows=aggregate.ssl_rows, x509_rows=aggregate.x509_rows,
        ssl_log_label=aggregate.ssl_log_label,
        x509_log_label=aggregate.x509_log_label,
        joined=aggregate.joined, missing_certs=aggregate.missing_certs,
        aggregated=aggregate.aggregated,
        skipped_empty=aggregate.skipped_empty,
        seconds=aggregate.seconds, telemetry=aggregate.telemetry)


def _reduce(aggregates: List[ShardAggregate], *, jobs: int,
            quarantine: Optional[Quarantine]) -> IngestResult:
    """Merge partials in shard-index order; emit the canonical metrics."""
    result = IngestResult(jobs=jobs, shard_count=len(aggregates),
                          quarantine=quarantine)
    sink = get_sink()
    merged = result.chains
    seen_fps = set()
    for aggregate in sorted(aggregates, key=lambda a: a.index):
        # The fault-kind split is the one canonical value only the
        # worker saw; everything else captured rides along create-only.
        sink.attach(aggregate.telemetry,
                    replay=("repro_faults_injected_total",))
        for key, chain in aggregate.chains.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = chain
            else:
                existing.usage.merge(chain.usage)
        for fingerprint in aggregate.cert_fingerprints:
            if fingerprint not in seen_fps:
                seen_fps.add(fingerprint)
                result.cert_fingerprints.append(fingerprint)
        if quarantine is not None:
            for record in aggregate.quarantined:
                quarantine.add(source=record.source, line=record.line,
                               reason=record.reason, detail=record.detail,
                               raw=record.raw)
        result.ssl_rows += aggregate.ssl_rows
        result.x509_rows += aggregate.x509_rows
        result.joined += aggregate.joined
        result.missing_certs += aggregate.missing_certs
        result.aggregated += aggregate.aggregated
        result.skipped_empty += aggregate.skipped_empty
        # Canonical per-shard metrics, exactly as the serial readers
        # would have flushed them (one labelled inc per non-empty log).
        if aggregate.ssl_rows:
            instruments.ZEEK_ROWS.inc(aggregate.ssl_rows, direction="read",
                                      path=aggregate.ssl_log_label)
            instruments.PARALLEL_SHARD_ROWS.inc(
                aggregate.ssl_rows, path=aggregate.ssl_log_label)
        if aggregate.x509_rows:
            instruments.ZEEK_ROWS.inc(aggregate.x509_rows, direction="read",
                                      path=aggregate.x509_log_label)
            instruments.PARALLEL_SHARD_ROWS.inc(
                aggregate.x509_rows, path=aggregate.x509_log_label)
        instruments.PARALLEL_SHARDS.inc(outcome="ok")
        instruments.PARALLEL_SHARD_SECONDS.observe(aggregate.seconds)
    instruments.PARALLEL_WORKERS.set(jobs)
    instruments.ZEEK_JOIN_CONNECTIONS.inc(result.joined)
    instruments.ZEEK_JOIN_MISSING_CERTS.inc(result.missing_certs)
    instruments.CHAIN_CONN_AGGREGATED.inc(result.aggregated)
    instruments.CHAIN_CONN_SKIPPED.inc(result.skipped_empty)
    instruments.CHAIN_DISTINCT.inc(len(merged))
    if result.missing_certs:
        log.warning("join dropped unknown certificate references",
                    extra=kv(missing=result.missing_certs,
                             joined=result.joined))
    return result

"""Shard discovery and log splitting for the parallel ingestion engine.

A *shard* is one ``ssl.log``/``x509.log`` pair covering a slice of the
corpus — in the paper's setting, one month (or one Zeek rotation) of the
12-month campus capture.  :func:`discover_shards` pairs the files found
in a directory by name; :func:`split_zeek_log` manufactures shards from
a monolithic log (each piece carries a verbatim copy of the original
header block, so every shard is a complete, independently parseable
Zeek log).

Shards are ordered by sorted file name and numbered ``0..n-1``; that
index is the *only* ordering the reduce step relies on, which is what
makes the merged result independent of worker count and completion
order (docs/PERFORMANCE.md, "Determinism").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["ShardSpec", "discover_shards", "split_zeek_log"]


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One unit of parallel work: an SSL log and its X509 companion."""

    index: int
    ssl_path: str
    x509_path: str


def discover_shards(directory: str) -> List[ShardSpec]:
    """Pair ``ssl*``/``x509*`` files in ``directory`` into shards.

    Files pair by the name remainder after the ``ssl``/``x509`` prefix
    (``ssl.log.003`` ↔ ``x509.log.003``, ``ssl-2024-01.log`` ↔
    ``x509-2024-01.log``).  A single ``x509*`` file alongside many
    ``ssl*`` files is broadcast to every shard — the common layout where
    certificates are de-duplicated corpus-wide but connections rotate.

    Raises :class:`ValueError` when no SSL logs are present or an SSL
    log has no X509 companion.
    """
    ssl_files: Dict[str, str] = {}
    x509_files: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        full = os.path.join(directory, name)
        if not os.path.isfile(full):
            continue
        if name.startswith("ssl"):
            ssl_files[name[len("ssl"):]] = full
        elif name.startswith("x509"):
            x509_files[name[len("x509"):]] = full
    if not ssl_files:
        raise ValueError(f"no ssl* log files found in {directory}")
    broadcast = None
    if len(x509_files) == 1 and set(x509_files) != set(ssl_files):
        broadcast = next(iter(x509_files.values()))
    shards: List[ShardSpec] = []
    for index, suffix in enumerate(sorted(ssl_files)):
        x509_path = x509_files.get(suffix, broadcast)
        if x509_path is None:
            raise ValueError(
                f"no matching x509 log for {ssl_files[suffix]} "
                f"(looked for x509{suffix})")
        shards.append(ShardSpec(index=index, ssl_path=ssl_files[suffix],
                                x509_path=x509_path))
    return shards


def split_zeek_log(source: str, out_dir: str, shards: int) -> List[str]:
    """Split one Zeek log into ``shards`` contiguous-row pieces.

    Each piece is written to ``out_dir`` as ``<basename>.<index:03d>``
    with the source's full header block (every leading ``#`` line)
    replicated on top and its trailing ``#`` footer (``#close``)
    replicated at the bottom, so each piece stands alone.  Rows keep
    their original relative order; concatenating the pieces' data rows
    reproduces the source exactly.  Returns the written paths in shard
    order.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    os.makedirs(out_dir, exist_ok=True)
    with open(source, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    header: List[str] = []
    footer: List[str] = []
    data: List[str] = []
    for line in lines:
        if line.startswith("#"):
            (footer if data else header).append(line)
        else:
            data.append(line)
    base, extra = divmod(len(data), shards)
    stem = os.path.basename(source)
    paths: List[str] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunk = data[start:start + size]
        start += size
        path = os.path.join(out_dir, f"{stem}.{index:03d}")
        with open(path, "w", encoding="utf-8") as out:
            out.writelines(header)
            out.writelines(chunk)
            out.writelines(footer)
        paths.append(path)
    return paths

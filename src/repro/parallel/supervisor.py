"""Supervised parallel execution: every pool dispatch, able to survive.

The engines in this package used to ride a bare ``ProcessPoolExecutor``:
one worker segfault raised ``BrokenProcessPool`` and aborted the whole
run, a hung worker stalled it forever, and a driver crash lost every
completed shard.  :func:`run_supervised` is the shared dispatch layer
that closes those three holes for all four fan-out paths (shard ingest,
partition analysis, dataset generation, batch scanning):

* **Crash recovery.**  ``BrokenProcessPool`` no longer propagates: the
  dead pool is torn down (:func:`~repro.parallel.pool.kill_pool` — no
  orphan children), a fresh one is built, and the unfinished tasks are
  resubmitted.  Tasks that had *started* when the pool died are charged
  a failed attempt; tasks that were merely queued retry for free.
* **Hang detection.**  With a ``task_timeout``, each attempt touches a
  heartbeat file as it starts (workers locate the directory via the
  pool initializer — piggybacking the same worker-side channel the
  telemetry sink uses).  A started task whose heartbeat is older than
  the deadline is declared hung: the pool (hung worker included) is
  killed and rebuilt, the hung task is charged, innocents requeue free.
  Long-running task functions can call :func:`heartbeat` mid-task to
  push the deadline back.
* **Bounded retry, then graceful degradation — never silent.**  A task
  charged more than ``max_task_retries`` failed attempts is *poison*:
  it is recorded in the run's quarantine (when one is attached) and, by
  default, recovered by running the same function in-driver — where
  injected worker faults never fire, so the result is the one a healthy
  worker would have produced.  With ``serial_fallback=False`` the task
  is dropped with a ``None`` result instead; either way the outcome is
  visible in :class:`SupervisedRun` incidents, the CLI degradation
  footer, and the ``repro_supervisor_*`` metric families.
* **Crash-safe resume.**  With a :class:`~repro.resilience.journal.RunJournal`
  attached, every completed task's partial is persisted before the run
  moves on; ``resume=True`` replays journaled partials whose input
  fingerprint still matches instead of recomputing them.

**Determinism.**  None of this touches the byte-identical merge
guarantee: results come back in task-list order no matter which pool,
attempt, or journal replay produced each one, and the engines keep
merging partials in shard/partition/interval/batch order.  Ordinary
exceptions raised by the task function itself (a malformed shard in
strict mode, say) are *not* infrastructure failures: they are never
retried, and when several tasks fail this way the error of the
lowest-indexed task is re-raised — the same one a serial loop would
have hit first.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..obs import instruments
from ..obs.logging import get_logger, kv
from ..obs.tracing import trace_span
from ..resilience.journal import RunJournal
from ..resilience.quarantine import Quarantine
from . import pool as pool_mod

__all__ = ["SupervisorConfig", "SupervisorIncident", "SupervisedRun",
           "run_supervised", "resolve_config", "heartbeat",
           "worker_hang_seconds", "HANG_SECONDS_VAR"]

log = get_logger(__name__)

#: How long an injected ``worker_hang`` stalls (seconds).  Deliberately
#: far past any test deadline; overridable so chaos tests that *don't*
#: set a deadline still finish ("an undetected hang completes, slowly").
HANG_SECONDS_VAR = "REPRO_WORKER_HANG_SECONDS"

#: Exit status an injected worker crash dies with (mimics an abort).
_CRASH_EXIT_CODE = 87


def worker_hang_seconds() -> float:
    try:
        return float(os.environ.get(HANG_SECONDS_VAR, ""))
    except ValueError:
        return 60.0


@dataclass
class SupervisorConfig:
    """How one supervised dispatch should detect and absorb failures."""

    #: Per-task deadline in seconds (heartbeat-based hang detection);
    #: ``None`` disables the watchdog — and its polling — entirely.
    task_timeout: Optional[float] = None
    #: Failed pool attempts allowed per task beyond the first, before
    #: the task is quarantined as poison.
    max_task_retries: int = 2
    #: Run poison tasks in-driver as a last resort (default).  ``False``
    #: drops them with a ``None`` result instead — still never silent.
    serial_fallback: bool = True
    #: Fault plan whose ``worker_crash_rate``/``worker_hang_rate`` pool
    #: attempts draw from (chaos testing); ``None`` injects nothing.
    plan: Optional[FaultPlan] = None
    #: Crash-safe completion journal; with ``resume`` the dispatch
    #: replays journaled partials instead of recomputing them.
    journal: Optional[RunJournal] = None
    resume: bool = False
    #: Where poison tasks are recorded (rides the run's existing sink).
    quarantine: Optional[Quarantine] = None
    #: Watchdog poll interval (only meaningful with ``task_timeout``).
    poll_interval: float = 0.05


@dataclass(frozen=True, slots=True)
class SupervisorIncident:
    """One absorbed failure: what happened, to which task, on which try."""

    kind: str
    incident: str
    task_id: str
    attempt: int
    detail: str = ""


@dataclass
class SupervisedRun:
    """The outcome of one supervised dispatch.

    ``results`` is in task order; an entry is ``None`` only for a poison
    task dropped with ``serial_fallback=False``.
    """

    kind: str
    results: List[Any] = field(default_factory=list)
    incidents: List[SupervisorIncident] = field(default_factory=list)
    journal_replayed: int = 0
    fallbacks: int = 0
    quarantined: List[str] = field(default_factory=list)
    pool_rebuilds: int = 0

    @property
    def degraded(self) -> bool:
        """True when this dispatch did not run perfectly clean."""
        return bool(self.incidents or self.quarantined)

    def summary_lines(self) -> List[str]:
        """Human degradation/replay summary for the CLI footer."""
        replay = ([f"supervisor[{self.kind}]: {self.journal_replayed} "
                   f"task{'s' if self.journal_replayed != 1 else ''} "
                   f"served from the run journal"]
                  if self.journal_replayed else [])
        if not self.degraded:
            return replay
        counts: Dict[str, int] = {}
        for incident in self.incidents:
            counts[incident.incident] = counts.get(incident.incident, 0) + 1
        parts = [f"{name} ×{count}" for name, count in sorted(counts.items())]
        lines = replay + [f"supervisor[{self.kind}]: recovered from "
                 + ", ".join(parts)
                 + (f"; {self.pool_rebuilds} pool rebuild"
                    f"{'s' if self.pool_rebuilds != 1 else ''}"
                    if self.pool_rebuilds else "")]
        for task_id in self.quarantined:
            lines.append(f"  poison task {task_id}: "
                         + ("recovered in-driver" if self.fallbacks
                            else "dropped (serial fallback disabled)"))
        return lines

    def report(self) -> dict:
        """Diffable incident report (JSON-ready)."""
        return {
            "kind": self.kind,
            "tasks": len(self.results),
            "journal_replayed": self.journal_replayed,
            "pool_rebuilds": self.pool_rebuilds,
            "fallbacks": self.fallbacks,
            "quarantined": list(self.quarantined),
            "incidents": [{"incident": i.incident, "task": i.task_id,
                           "attempt": i.attempt, "detail": i.detail}
                          for i in self.incidents],
        }


def resolve_config(supervise: Optional[SupervisorConfig], *,
                   plan: Optional[FaultPlan] = None,
                   quarantine: Optional[Quarantine] = None,
                   ) -> SupervisorConfig:
    """The engine-side supervisor config: caller's copy + run defaults.

    The caller's object is never mutated; the engine's own ``plan`` /
    ``quarantine`` arguments fill any field the config left unset, so a
    plain ``ingest_shards(plan=..., quarantine=...)`` call is supervised
    with the same plan and sink it always threaded through the workers.
    """
    config = replace(supervise) if supervise is not None \
        else SupervisorConfig()
    if config.plan is None and plan is not None and plan.any():
        config.plan = plan
    if config.quarantine is None:
        config.quarantine = quarantine
    return config


# -- worker side ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _SupervisedCall:
    """One task attempt, picklable for the pool."""

    fn: Callable[[Any], Any]
    task: Any
    task_id: str
    attempt: int
    plan: Optional[FaultPlan]


def _beat_path(directory: str, task_id: str) -> str:
    digest = hashlib.sha1(task_id.encode("utf-8")).hexdigest()[:24]
    return os.path.join(directory, f"hb-{digest}")


def heartbeat(task_id: str) -> None:
    """Refresh ``task_id``'s liveness beat (no-op outside a deadline run).

    The supervisor touches it automatically at task start; a task
    function processing an unusually large unit can call this
    periodically to keep a tight ``task_timeout`` honest.
    """
    directory = pool_mod.heartbeat_dir()
    if directory is None:
        return
    try:
        with open(_beat_path(directory, task_id), "w") as handle:
            handle.write(f"{os.getpid()}\n")
    except OSError:  # pragma: no cover - beat loss degrades to a retry
        pass


def _supervised_call(call: _SupervisedCall) -> Any:
    """Run one attempt inside a worker: beat, maybe fault, then the task.

    The injected-fault draw happens only in real pool workers
    (:func:`~repro.parallel.pool.in_pool_worker`), keyed by
    ``(task id, attempt)`` — so a retry draws afresh, and the in-driver
    serial fallback (which calls ``fn`` directly, not this wrapper)
    can never crash the driver.
    """
    heartbeat(call.task_id)
    if call.plan is not None and pool_mod.in_pool_worker():
        fault = FaultInjector(call.plan).worker_fault(call.task_id,
                                                      call.attempt)
        if fault == "crash":
            os._exit(_CRASH_EXIT_CODE)
        elif fault == "hang":
            time.sleep(worker_hang_seconds())
    return call.fn(call.task)


# -- driver side ---------------------------------------------------------------


def run_supervised(kind: str, tasks: Sequence[Any],
                   fn: Callable[[Any], Any], *, jobs: int,
                   config: Optional[SupervisorConfig] = None,
                   task_ids: Optional[Callable[[Any, int], str]] = None,
                   fingerprint_fn: Optional[Callable[[Any], str]] = None,
                   validate_fn: Optional[Callable[[Any, Any], bool]] = None,
                   ) -> SupervisedRun:
    """Dispatch ``fn`` over ``tasks``, supervised; results in task order.

    ``jobs <= 1`` runs inline (no pool, no fault injection — identical
    to the engines' historical serial path) but still honours the
    journal.  ``fingerprint_fn`` derives each task's input fingerprint
    for journaling; ``validate_fn(task, payload)`` may veto a journal
    replay whose side-effect files have vanished (generation shards).
    """
    config = config or SupervisorConfig()
    tasks = list(tasks)
    run = SupervisedRun(kind=kind, results=[None] * len(tasks))
    ids = [task_ids(task, i) if task_ids else f"{kind}:{i:04d}"
           for i, task in enumerate(tasks)]
    done = [False] * len(tasks)
    journal = config.journal
    fingerprints = [fingerprint_fn(task) if fingerprint_fn else ""
                    for task in tasks]

    if journal is not None and config.resume:
        journaled = journal.completed()
        for i, task in enumerate(tasks):
            recorded = journaled.get(ids[i])
            if recorded is None:
                continue
            if recorded != fingerprints[i]:
                instruments.SUPERVISOR_JOURNAL.inc(result="stale")
                continue
            hit, payload = journal.load_partial(kind, fingerprints[i])
            if hit and (validate_fn is None or validate_fn(task, payload)):
                run.results[i] = payload
                done[i] = True
                run.journal_replayed += 1
                instruments.SUPERVISOR_JOURNAL.inc(result="replayed")
                instruments.SUPERVISOR_TASKS.inc(kind=kind,
                                                 outcome="replayed")
            else:
                instruments.SUPERVISOR_JOURNAL.inc(result="stale")
        if run.journal_replayed:
            log.info("run journal replayed", extra=kv(
                kind=kind, replayed=run.journal_replayed,
                remaining=done.count(False)))

    def complete(i: int, payload: Any, *, outcome: str = "completed") -> None:
        run.results[i] = payload
        done[i] = True
        instruments.SUPERVISOR_TASKS.inc(kind=kind, outcome=outcome)
        if journal is not None:
            journal.record(kind, ids[i], fingerprints[i], payload)

    pending = [i for i in range(len(tasks)) if not done[i]]
    if not pending:
        return run

    if jobs <= 1:
        with trace_span(f"supervised_{kind}", tasks=len(tasks), jobs=1):
            for i in pending:
                complete(i, fn(tasks[i]))
        return run

    _run_pool(kind, tasks, fn, ids=ids, pending=pending, jobs=jobs,
              config=config, run=run, complete=complete)
    return run


def _run_pool(kind: str, tasks: List[Any], fn: Callable[[Any], Any], *,
              ids: List[str], pending: List[int], jobs: int,
              config: SupervisorConfig, run: SupervisedRun,
              complete: Callable[..., None]) -> None:
    """The supervised pool loop: submit, watch, recover, drain."""
    # attempts[i] is the attempt number the *next* submission of task i
    # will carry — it keys the injector draw, so a free (uncharged)
    # resubmission of an innocent victim replays the same draw.
    attempts = [1] * len(tasks)
    max_attempts = 1 + max(0, config.max_task_retries)
    heartbeat_root = (tempfile.mkdtemp(prefix="repro-supervise-")
                      if config.task_timeout is not None else None)
    pool = pool_mod.make_pool(jobs, heartbeat=heartbeat_root)
    futures: Dict[Future, int] = {}
    errors: Dict[int, BaseException] = {}
    poison: List[int] = []

    def clear_beat(i: int) -> None:
        if heartbeat_root is not None:
            try:
                os.remove(_beat_path(heartbeat_root, ids[i]))
            except OSError:
                pass

    def started(i: int) -> bool:
        if heartbeat_root is None:
            return True  # no heartbeats: assume started (conservative)
        return os.path.exists(_beat_path(heartbeat_root, ids[i]))

    def beat_age(i: int) -> Optional[float]:
        try:
            return time.time() - os.path.getmtime(
                _beat_path(heartbeat_root, ids[i]))
        except OSError:
            return None

    def submit(i: int) -> None:
        clear_beat(i)
        call = _SupervisedCall(fn=fn, task=tasks[i], task_id=ids[i],
                               attempt=attempts[i], plan=config.plan)
        futures[pool.submit(_supervised_call, call)] = i

    def charge(i: int, incident: str, detail: str = "") -> bool:
        """Count one failed attempt; True when the task may retry."""
        run.incidents.append(SupervisorIncident(
            kind=kind, incident=incident, task_id=ids[i],
            attempt=attempts[i], detail=detail))
        instruments.SUPERVISOR_INCIDENTS.inc(kind=kind, incident=incident)
        log.warning("supervised task attempt failed", extra=kv(
            kind=kind, task=ids[i], attempt=attempts[i],
            incident=incident, detail=detail))
        attempts[i] += 1
        if attempts[i] > max_attempts:
            poison.append(i)
            return False
        return True

    def rebuild_pool(reason: str) -> None:
        nonlocal pool
        pool_mod.kill_pool(pool)
        run.pool_rebuilds += 1
        instruments.SUPERVISOR_POOL_REBUILDS.inc(kind=kind)
        log.warning("worker pool rebuilt", extra=kv(
            kind=kind, reason=reason, rebuilds=run.pool_rebuilds))
        pool = pool_mod.make_pool(jobs, heartbeat=heartbeat_root)

    try:
        with trace_span(f"supervised_{kind}", tasks=len(tasks), jobs=jobs):
            for i in pending:
                submit(i)
            while futures:
                timeout = (config.poll_interval
                           if config.task_timeout is not None else None)
                finished, _ = wait(list(futures), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                requeue: List[int] = []
                broken: List[int] = []
                for future in finished:
                    i = futures.pop(future)
                    exc = future.exception()
                    if exc is None:
                        complete(i, future.result())
                        clear_beat(i)
                    elif isinstance(exc, BrokenProcessPool):
                        broken.append(i)
                    elif isinstance(exc, Exception):
                        # The task itself failed — not infrastructure.
                        # Never retried; surfaced after the drain (the
                        # lowest-indexed error wins, like a serial loop).
                        errors[i] = exc
                        clear_beat(i)
                    else:
                        raise exc  # KeyboardInterrupt etc. — bail now
                if broken:
                    # The pool is dead: every other outstanding future
                    # is doomed too.  Charge what had started; what was
                    # only queued retries free.
                    for future, i in list(futures.items()):
                        del futures[future]
                        broken.append(i)
                    charged = [i for i in broken if started(i)] or broken
                    for i in sorted(broken):
                        if i in charged:
                            if charge(i, "worker_crash",
                                      "pool broke while task was running"):
                                requeue.append(i)
                        else:
                            requeue.append(i)
                    rebuild_pool("worker_crash")
                elif config.task_timeout is not None and futures:
                    hung = [i for future, i in futures.items()
                            if started(i)
                            and (beat_age(i) or 0) > config.task_timeout]
                    if hung:
                        # Can't kill one worker out of a live pool
                        # safely — kill the pool, requeue the innocents.
                        victims = [i for future, i in futures.items()
                                   if i not in hung]
                        futures.clear()
                        for i in sorted(hung):
                            if charge(i, "worker_hang",
                                      f"no heartbeat progress in "
                                      f"{config.task_timeout:g}s"):
                                requeue.append(i)
                        requeue.extend(sorted(victims))
                        rebuild_pool("worker_hang")
                for i in requeue:
                    submit(i)

        if errors:
            raise errors[min(errors)]

        for i in sorted(poison):
            run.quarantined.append(ids[i])
            instruments.SUPERVISOR_TASKS.inc(kind=kind, outcome="quarantined")
            if config.quarantine is not None:
                config.quarantine.add(
                    source=f"supervisor:{kind}", line=i,
                    reason="poison_task",
                    detail=f"{ids[i]} failed {attempts[i] - 1} pool "
                           f"attempts",
                    raw=ids[i])
            if config.serial_fallback:
                run.fallbacks += 1
                run.incidents.append(SupervisorIncident(
                    kind=kind, incident="serial_fallback", task_id=ids[i],
                    attempt=attempts[i],
                    detail="poison task recovered in-driver"))
                instruments.SUPERVISOR_INCIDENTS.inc(
                    kind=kind, incident="serial_fallback")
                log.warning("poison task: in-driver serial fallback",
                            extra=kv(kind=kind, task=ids[i]))
                with trace_span("supervisor_fallback", task=ids[i]):
                    complete(i, fn(tasks[i]), outcome="fallback")
            else:
                log.warning("poison task dropped (serial fallback "
                            "disabled)", extra=kv(kind=kind, task=ids[i]))
                instruments.SUPERVISOR_TASKS.inc(kind=kind,
                                                 outcome="dropped")
    finally:
        pool_mod.kill_pool(pool)
        if heartbeat_root is not None:
            shutil.rmtree(heartbeat_root, ignore_errors=True)

"""The map side of parallel ingestion: one shard in, one aggregate out.

:func:`process_shard` runs inside a worker process.  It streams the
shard's X509 log into a fingerprint-keyed certificate map, then streams
the SSL log through the join straight into chain aggregation — no
full-shard row list ever exists — and returns a picklable
:class:`ShardAggregate`: the shard's chain-key → usage partials plus
every tally the driver needs to reconstruct the canonical metrics.

Workers leave **no direct metrics behind**: the whole body runs under
:func:`~repro.obs.sink.capture_telemetry`, which runs it observed
(metrics and spans enabled) and then diffs the changes away into a
picklable :class:`~repro.obs.sink.WorkerTelemetry` riding home on the
aggregate.  A forked child inherits the parent's counter values, so raw
per-worker increments would be double-counted garbage, and per-shard
``CHAIN_DISTINCT`` increments would overcount chains that appear in
several shards.  The driver derives every canonical metric from the
merged result instead — which also makes metric values independent of
``--jobs`` — and replays only the fault-kind split (the one value that
genuinely lives worker-side) from the captured telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.chain import ObservedChain, aggregate_chains
from ..core.packed import (ChainFold, X509_COLUMN_SPEC, fold_ssl_segment,
                           pack_shard_payload)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..obs.sink import WorkerTelemetry, capture_telemetry
from ..obs.tracing import trace_span
from ..resilience.quarantine import Quarantine, QuarantinedRecord
from ..zeek.columnar import ColumnarStats, read_zeek_log_columnar
from ..zeek.format import ZeekLogReader, iter_zeek_log
from ..zeek.records import SSLRecord, X509Record
from ..zeek.tap import JoinStats, certificate_map, iter_joined

__all__ = ["ShardTask", "ShardAggregate", "ColumnarShardAggregate",
           "process_shard", "process_shard_columnar"]

#: SSL columns the columnar fold consumes; every other column is either
#: validated without being stored (numeric kinds whose parse can fail)
#: or skipped outright (infallible strings/bools) — see
#: :func:`repro.zeek.columnar.read_zeek_log_columnar`.
_SSL_PROJECTION = frozenset({"ts", "id.orig_h", "id.resp_h", "id.resp_p",
                             "established", "server_name", "cert_chain_fps"})
_SSL_INTERN = ("cert_chain_fps", "server_name")
_X509_PROJECTION = frozenset(name for name, _ in X509_COLUMN_SPEC)


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything a worker needs, picklable for the process pool."""

    index: int
    ssl_path: str
    x509_path: str
    plan: Optional[FaultPlan] = None
    tolerant: bool = False
    compiled: bool = True
    columnar: bool = False


@dataclass(slots=True)
class ShardAggregate:
    """One shard's partial result — the unit the driver reduces over."""

    index: int
    chains: Dict[Tuple[str, ...], ObservedChain] = field(default_factory=dict)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    #: Distinct certificate fingerprints in first-seen (row) order.
    cert_fingerprints: List[str] = field(default_factory=list)
    ssl_rows: int = 0
    x509_rows: int = 0
    ssl_log_label: str = "unknown"
    x509_log_label: str = "unknown"
    joined: int = 0
    missing_certs: int = 0
    aggregated: int = 0
    skipped_empty: int = 0
    seconds: float = 0.0
    #: Everything this worker observed (spans, metric deltas), attached
    #: to the driver's sink during the reduce.
    telemetry: Optional[WorkerTelemetry] = None


@dataclass(slots=True)
class ColumnarShardAggregate:
    """One shard's packed partial — the columnar hand-off unit.

    The row data crosses the process boundary as one opaque ``bytes``
    payload (see :mod:`repro.core.packed`); pickling it is a memcpy, so
    the hand-off cost no longer scales with object-graph complexity.
    The driver unpacks, rebuilds certificates, and reduces through the
    same merge as the compiled path.
    """

    index: int
    payload: bytes = b""
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    ssl_rows: int = 0
    x509_rows: int = 0
    ssl_log_label: str = "unknown"
    x509_log_label: str = "unknown"
    joined: int = 0
    missing_certs: int = 0
    aggregated: int = 0
    skipped_empty: int = 0
    seconds: float = 0.0
    telemetry: Optional[WorkerTelemetry] = None
    #: Decode-path tallies from the two columnar reads; the driver emits
    #: the canonical ``repro_columnar_*`` metrics from these so exports
    #: stay independent of ``--jobs``.
    ssl_stats: Optional[ColumnarStats] = None
    x509_stats: Optional[ColumnarStats] = None


def process_shard(task: ShardTask) -> ShardAggregate:
    """Ingest one shard: stream, join, aggregate; return the partials.

    Strict mode (``tolerant=False``) lets :class:`ZeekFormatError`
    propagate — the pool re-raises it in the driver with its ``file:line``
    message intact.  Fault injection uses the task's own plan so each
    shard file draws the same corruption pattern no matter which worker
    (or how many workers) processes it.

    ``task.columnar`` dispatches to :func:`process_shard_columnar`; the
    supervisor always submits this function, so journaled runs replay
    whichever mode their fingerprint recorded.
    """
    if task.columnar:
        return process_shard_columnar(task)
    start = time.perf_counter()
    quarantine = Quarantine() if task.tolerant else None
    injector = (FaultInjector(task.plan)
                if task.plan is not None and task.plan.any() else None)
    aggregate = ShardAggregate(index=task.index)
    with capture_telemetry("ingest", task.index) as telemetry, \
            trace_span("ingest_shard", shard=task.index):
        x509_refs: List[ZeekLogReader] = []
        x509_records: List[X509Record] = []
        seen_fps = set()
        for row in iter_zeek_log(task.x509_path, quarantine=quarantine,
                                 faults=injector, compiled=task.compiled,
                                 reader_ref=x509_refs):
            record = X509Record.from_row(row)
            x509_records.append(record)
            aggregate.x509_rows += 1
            fingerprint = record.fingerprint
            if fingerprint not in seen_fps:
                seen_fps.add(fingerprint)
                aggregate.cert_fingerprints.append(fingerprint)
        certificates = certificate_map(x509_records)
        del x509_records

        ssl_refs: List[ZeekLogReader] = []
        stats = JoinStats()

        def ssl_stream() -> Iterator[SSLRecord]:
            for row in iter_zeek_log(task.ssl_path, quarantine=quarantine,
                                     faults=injector, compiled=task.compiled,
                                     reader_ref=ssl_refs):
                aggregate.ssl_rows += 1
                yield SSLRecord.from_row(row)

        aggregate.chains = aggregate_chains(
            iter_joined(ssl_stream(), certificates, stats=stats))
    aggregate.telemetry = telemetry

    aggregate.ssl_log_label = (ssl_refs[0].path if ssl_refs else None) or "unknown"
    aggregate.x509_log_label = (x509_refs[0].path if x509_refs else None) or "unknown"
    aggregate.joined = stats.joined
    aggregate.missing_certs = stats.missing_certs
    aggregate.aggregated = sum(
        chain.usage.connections for chain in aggregate.chains.values())
    aggregate.skipped_empty = stats.joined - aggregate.aggregated
    if quarantine is not None:
        aggregate.quarantined = quarantine.records
    aggregate.seconds = time.perf_counter() - start
    return aggregate


def process_shard_columnar(task: ShardTask) -> ColumnarShardAggregate:
    """Ingest one shard through the struct-of-arrays hot path.

    Both logs are read column-at-a-time (:func:`read_zeek_log_columnar`);
    the X509 side is de-duplicated positionally (last row per
    fingerprint, first-seen fingerprint order — exactly what the legacy
    ``certificate_map`` dict comprehension converges to), the SSL side is
    folded straight into chain partials without ever materialising a row
    object, and everything ships home as one packed column payload.
    Strict/tolerant and fault-injection semantics are identical to
    :func:`process_shard` — fault plans force the reader onto the
    per-line parity path, so quarantine ``file:line`` records match the
    row readers byte for byte.
    """
    start = time.perf_counter()
    quarantine = Quarantine() if task.tolerant else None
    injector = (FaultInjector(task.plan)
                if task.plan is not None and task.plan.any() else None)
    aggregate = ColumnarShardAggregate(index=task.index)
    with capture_telemetry("ingest", task.index) as telemetry, \
            trace_span("ingest_shard", shard=task.index):
        x509 = read_zeek_log_columnar(task.x509_path, quarantine=quarantine,
                                      faults=injector,
                                      project=_X509_PROJECTION)
        # De-duplicate by fingerprint: keep the *last* row per
        # fingerprint in *first-seen* fingerprint order (the legacy
        # worker builds certificate_map over all records — last row
        # wins — and tracks first-seen order separately).
        seen: dict = {}
        picks: list = []
        for segment in x509.segments:
            fingerprints = segment.columns["fingerprint"]
            if isinstance(fingerprints, list):
                values = fingerprints
            else:  # pragma: no cover - fingerprint is never interned
                values = fingerprints.materialize()
            for i, fingerprint in enumerate(values):
                position = seen.get(fingerprint)
                if position is None:
                    seen[fingerprint] = len(picks)
                    picks.append((segment, i))
                else:
                    picks[position] = (segment, i)
        x509_columns = {
            name: [segment.columns[name][i] for segment, i in picks]
            for name, _ in X509_COLUMN_SPEC}
        known_fps = frozenset(seen)

        ssl = read_zeek_log_columnar(task.ssl_path, quarantine=quarantine,
                                     faults=injector, intern=_SSL_INTERN,
                                     project=_SSL_PROJECTION)
        fold = ChainFold()
        for segment in ssl.segments:
            columns = segment.columns
            sni = columns["server_name"]
            chain_fps = columns["cert_chain_fps"]
            fold_ssl_segment(
                fold, known_fps=known_fps, ts=columns["ts"],
                client_ip=columns["id.orig_h"],
                server_ip=columns["id.resp_h"], port=columns["id.resp_p"],
                established=columns["established"], sni_ids=sni.ids,
                sni_values=sni.table.values, chain_ids=chain_fps.ids,
                chain_values=chain_fps.table.values)
        aggregate.payload = pack_shard_payload(
            chain_keys=list(fold.chains), usages=list(fold.chains.values()),
            cert_fingerprints=list(seen), x509_columns=x509_columns)
        with trace_span("shard_payload", shard=task.index,
                        payload_bytes=len(aggregate.payload)):
            pass  # zero-duration marker: payload size in the trace
    aggregate.telemetry = telemetry

    aggregate.ssl_rows = ssl.rows
    aggregate.x509_rows = x509.rows
    aggregate.ssl_log_label = ssl.path or "unknown"
    aggregate.x509_log_label = x509.path or "unknown"
    aggregate.joined = fold.joined
    aggregate.missing_certs = fold.missing_certs
    aggregate.aggregated = fold.aggregated
    aggregate.skipped_empty = fold.joined - fold.aggregated
    aggregate.ssl_stats = ssl.stats
    aggregate.x509_stats = x509.stats
    if quarantine is not None:
        aggregate.quarantined = quarantine.records
    aggregate.seconds = time.perf_counter() - start
    return aggregate

"""The map side of parallel ingestion: one shard in, one aggregate out.

:func:`process_shard` runs inside a worker process.  It streams the
shard's X509 log into a fingerprint-keyed certificate map, then streams
the SSL log through the join straight into chain aggregation — no
full-shard row list ever exists — and returns a picklable
:class:`ShardAggregate`: the shard's chain-key → usage partials plus
every tally the driver needs to reconstruct the canonical metrics.

Workers leave **no direct metrics behind**: the whole body runs under
:func:`~repro.obs.sink.capture_telemetry`, which runs it observed
(metrics and spans enabled) and then diffs the changes away into a
picklable :class:`~repro.obs.sink.WorkerTelemetry` riding home on the
aggregate.  A forked child inherits the parent's counter values, so raw
per-worker increments would be double-counted garbage, and per-shard
``CHAIN_DISTINCT`` increments would overcount chains that appear in
several shards.  The driver derives every canonical metric from the
merged result instead — which also makes metric values independent of
``--jobs`` — and replays only the fault-kind split (the one value that
genuinely lives worker-side) from the captured telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.chain import ObservedChain, aggregate_chains
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..obs.sink import WorkerTelemetry, capture_telemetry
from ..obs.tracing import trace_span
from ..resilience.quarantine import Quarantine, QuarantinedRecord
from ..zeek.format import ZeekLogReader, iter_zeek_log
from ..zeek.records import SSLRecord, X509Record
from ..zeek.tap import JoinStats, certificate_map, iter_joined

__all__ = ["ShardTask", "ShardAggregate", "process_shard"]


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything a worker needs, picklable for the process pool."""

    index: int
    ssl_path: str
    x509_path: str
    plan: Optional[FaultPlan] = None
    tolerant: bool = False
    compiled: bool = True


@dataclass(slots=True)
class ShardAggregate:
    """One shard's partial result — the unit the driver reduces over."""

    index: int
    chains: Dict[Tuple[str, ...], ObservedChain] = field(default_factory=dict)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    #: Distinct certificate fingerprints in first-seen (row) order.
    cert_fingerprints: List[str] = field(default_factory=list)
    ssl_rows: int = 0
    x509_rows: int = 0
    ssl_log_label: str = "unknown"
    x509_log_label: str = "unknown"
    joined: int = 0
    missing_certs: int = 0
    aggregated: int = 0
    skipped_empty: int = 0
    seconds: float = 0.0
    #: Everything this worker observed (spans, metric deltas), attached
    #: to the driver's sink during the reduce.
    telemetry: Optional[WorkerTelemetry] = None


def process_shard(task: ShardTask) -> ShardAggregate:
    """Ingest one shard: stream, join, aggregate; return the partials.

    Strict mode (``tolerant=False``) lets :class:`ZeekFormatError`
    propagate — the pool re-raises it in the driver with its ``file:line``
    message intact.  Fault injection uses the task's own plan so each
    shard file draws the same corruption pattern no matter which worker
    (or how many workers) processes it.
    """
    start = time.perf_counter()
    quarantine = Quarantine() if task.tolerant else None
    injector = (FaultInjector(task.plan)
                if task.plan is not None and task.plan.any() else None)
    aggregate = ShardAggregate(index=task.index)
    with capture_telemetry("ingest", task.index) as telemetry, \
            trace_span("ingest_shard", shard=task.index):
        x509_refs: List[ZeekLogReader] = []
        x509_records: List[X509Record] = []
        seen_fps = set()
        for row in iter_zeek_log(task.x509_path, quarantine=quarantine,
                                 faults=injector, compiled=task.compiled,
                                 reader_ref=x509_refs):
            record = X509Record.from_row(row)
            x509_records.append(record)
            aggregate.x509_rows += 1
            fingerprint = record.fingerprint
            if fingerprint not in seen_fps:
                seen_fps.add(fingerprint)
                aggregate.cert_fingerprints.append(fingerprint)
        certificates = certificate_map(x509_records)
        del x509_records

        ssl_refs: List[ZeekLogReader] = []
        stats = JoinStats()

        def ssl_stream() -> Iterator[SSLRecord]:
            for row in iter_zeek_log(task.ssl_path, quarantine=quarantine,
                                     faults=injector, compiled=task.compiled,
                                     reader_ref=ssl_refs):
                aggregate.ssl_rows += 1
                yield SSLRecord.from_row(row)

        aggregate.chains = aggregate_chains(
            iter_joined(ssl_stream(), certificates, stats=stats))
    aggregate.telemetry = telemetry

    aggregate.ssl_log_label = (ssl_refs[0].path if ssl_refs else None) or "unknown"
    aggregate.x509_log_label = (x509_refs[0].path if x509_refs else None) or "unknown"
    aggregate.joined = stats.joined
    aggregate.missing_certs = stats.missing_certs
    aggregate.aggregated = sum(
        chain.usage.connections for chain in aggregate.chains.values())
    aggregate.skipped_empty = stats.joined - aggregate.aggregated
    if quarantine is not None:
        aggregate.quarantined = quarantine.records
    aggregate.seconds = time.perf_counter() - start
    return aggregate

"""Shared worker-pool plumbing for every parallel engine.

Each engine used to repeat the same two fragments: the jobs clamp
(request, capped to CPU count and unit count) and a bare
``ProcessPoolExecutor``.  Centralising them here buys two things:

* **One clamp, one escape hatch.**  :func:`clamp_jobs` applies the
  request → ``min(cpus, units)`` rule everywhere, and honours
  ``REPRO_PARALLEL_NO_CPU_CLAMP=1`` to skip the CPU cap (the unit cap
  always holds).  The override exists for telemetry and equivalence
  tests that must demonstrate genuinely distinct worker processes — a
  ``--jobs 4`` trace with four pids — even on a 1-CPU CI box, where the
  perf-motivated CPU cap would silently collapse the pool to one.
* **Workers that log like the driver.**  ``ProcessPoolExecutor`` under
  the spawn start method gives workers a pristine interpreter: the
  driver's ``--log-level``/``REPRO_LOG_LEVEL`` configuration is lost
  and worker records fall back to WARNING.  :func:`make_pool` installs
  an initializer that re-applies the driver's effective level in every
  worker, so ``log.debug`` lines from shard readers actually surface.

The initializer also stamps two process-globals the supervised executor
(:mod:`repro.parallel.supervisor`) reads from inside workers: the
"I am a pool worker" flag (:func:`in_pool_worker`) that gates injected
worker-crash/worker-hang faults to pool attempts only (the in-driver
serial fallback must never re-draw them), and the heartbeat directory
(:func:`heartbeat_dir`) workers touch beat files under so the driver
can tell a *hung* task from a merely *queued* one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from ..obs.logging import configure_logging, current_log_level

__all__ = ["NO_CPU_CLAMP_VAR", "clamp_jobs", "make_pool", "kill_pool",
           "in_pool_worker", "heartbeat_dir"]

#: Set to ``1``/``true`` to lift the CPU-count cap on worker pools.
NO_CPU_CLAMP_VAR = "REPRO_PARALLEL_NO_CPU_CLAMP"

#: Worker-process globals, set by the pool initializer (never the driver).
_IN_POOL_WORKER = False
_HEARTBEAT_DIR: Optional[str] = None


def _cpu_clamp_lifted() -> bool:
    return os.environ.get(NO_CPU_CLAMP_VAR, "").lower() in ("1", "true", "yes")


def clamp_jobs(requested: Optional[int], units: int) -> tuple[int, int]:
    """``(requested, effective)`` worker counts for ``units`` work items.

    ``requested=None`` asks for one worker per CPU.  The effective count
    is capped at the CPU count (extra workers past the cores only add
    pool and pickling overhead) and at the unit count (no idle
    workers); see :data:`NO_CPU_CLAMP_VAR` for the test-only override
    of the first cap.
    """
    if requested is None:
        requested = os.cpu_count() or 1
    requested = max(1, requested)
    effective = min(requested, max(1, units))
    if not _cpu_clamp_lifted():
        effective = min(effective, os.cpu_count() or 1)
    return requested, max(1, effective)


def in_pool_worker() -> bool:
    """True inside a :func:`make_pool` worker process."""
    return _IN_POOL_WORKER


def heartbeat_dir() -> Optional[str]:
    """The supervisor's heartbeat directory, inside a worker (else None)."""
    return _HEARTBEAT_DIR


def _bootstrap_worker(level_name: str,
                      heartbeat: Optional[str] = None) -> None:
    """Runs once in each fresh worker: mirror the driver's logging and
    record the pool-worker globals the supervisor consults."""
    global _IN_POOL_WORKER, _HEARTBEAT_DIR
    _IN_POOL_WORKER = True
    _HEARTBEAT_DIR = heartbeat
    configure_logging(level=level_name, force=True)


def make_pool(workers: int, *,
              heartbeat: Optional[str] = None) -> ProcessPoolExecutor:
    """A process pool whose workers inherit the driver's log level."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_bootstrap_worker,
        initargs=(current_log_level(), heartbeat))


def kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: no draining, no orphans.

    ``shutdown(wait=True)`` would block behind a hung worker forever,
    and ``shutdown(wait=False)`` alone leaves live children behind — a
    supervisor recovering from a hang needs both halves: cancel what is
    queued, terminate every worker process, and reap it (escalating to
    SIGKILL for workers that ignore SIGTERM, e.g. one wedged in
    uninterruptible I/O).  Safe to call on an already-broken or
    already-shut-down pool.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive: pool already broken
        pass
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGTERM almost always lands
            process.kill()
            process.join(timeout=5.0)

"""Synthetic campus network: calibrated populations, a 12-month workload,
and the assembled dataset (the substitute for the paper's IRB-gated logs)."""

from .dataset import (
    CampusDataset,
    build_campus_dataset,
    cached_campus_dataset,
    resolve_scale,
)
from .hybrid_population import build_hybrid_population
from .population import (
    PUBLIC_DOMAINS,
    build_interception_population,
    build_nonpublic_population,
    build_public_population,
)
from .profiles import (
    DEFAULT_SCALE,
    INTERCEPTION_FLEET,
    PAPER,
    PORT_MODELS,
    PaperTargets,
    SMALL_SCALE,
    ScaleConfig,
    build_vendor_directory,
)
from .spec import ChainSpec, ClientMix, MIX_PRESETS
from .workload import STUDY_DAYS, STUDY_START, ClientPools, WorkloadGenerator

__all__ = [
    "CampusDataset",
    "ChainSpec",
    "ClientMix",
    "ClientPools",
    "DEFAULT_SCALE",
    "INTERCEPTION_FLEET",
    "MIX_PRESETS",
    "PAPER",
    "PORT_MODELS",
    "PUBLIC_DOMAINS",
    "PaperTargets",
    "SMALL_SCALE",
    "STUDY_DAYS",
    "STUDY_START",
    "ScaleConfig",
    "WorkloadGenerator",
    "build_campus_dataset",
    "cached_campus_dataset",
    "build_hybrid_population",
    "build_interception_population",
    "build_nonpublic_population",
    "build_public_population",
    "build_vendor_directory",
    "resolve_scale",
]

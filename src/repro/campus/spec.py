"""Chain specifications: the simulator's unit of server configuration.

Each ``ChainSpec`` couples one delivered chain with the behavioural knobs
that determine how it shows up in the logs: traffic volume, SNI behaviour,
port model, the mix of client validation policies that talk to it, and
ground-truth labels the tests use to validate the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..x509.certificate import Certificate

__all__ = ["ClientMix", "ChainSpec", "MIX_PRESETS"]


@dataclass(frozen=True)
class ClientMix:
    """Relative weights of client validation behaviours.

    * ``browser`` — Chrome-style path building against the full registry;
    * ``browser_nss`` — browser restricted to the Mozilla store (Zeek's
      default view; fails on Microsoft-only anchors);
    * ``strict`` — OpenSSL-style presented-chain validation;
    * ``permissive`` — no validation (IoT/agents with verification off);
    * ``trusting`` — browser with the spec's ``extra_anchors`` installed
      (endpoints with the interception appliance root deployed).
    """

    browser: float = 0.0
    browser_nss: float = 0.0
    strict: float = 0.0
    permissive: float = 0.0
    trusting: float = 0.0

    def weights(self) -> tuple[tuple[str, float], ...]:
        entries = (
            ("browser", self.browser),
            ("browser_nss", self.browser_nss),
            ("strict", self.strict),
            ("permissive", self.permissive),
            ("trusting", self.trusting),
        )
        total = sum(w for _, w in entries)
        if total <= 0:
            raise ValueError("client mix has no positive weights")
        return tuple((kind, w / total) for kind, w in entries if w > 0)


#: Mixes calibrated so the per-category establishment rates land near the
#: paper's: complete paths ~97.7 %, contains ~92 %, no-path ~57 %.
MIX_PRESETS: Mapping[str, ClientMix] = {
    "public": ClientMix(browser=0.95, strict=0.03, permissive=0.02),
    "hybrid_complete": ClientMix(browser=0.945, browser_nss=0.025,
                                 permissive=0.03),
    "hybrid_contains": ClientMix(browser=0.92, strict=0.06, permissive=0.02),
    "hybrid_contains_stray_leaf": ClientMix(browser=0.40, permissive=0.60),
    "hybrid_no_path": ClientMix(browser=0.38, strict=0.05, permissive=0.57),
    "nonpub": ClientMix(browser=0.10, strict=0.05, permissive=0.85),
    "interception": ClientMix(trusting=0.97, browser=0.03),
    "reject_all": ClientMix(strict=1.0),
}


@dataclass
class ChainSpec:
    """One server-delivered chain plus its behavioural profile."""

    chain: Tuple[Certificate, ...]
    hostname: Optional[str]
    category_truth: str
    mix: ClientMix
    port_model: str
    mean_connections: float
    sni_rate: float = 1.0
    server_id: Optional[str] = None
    labels: Dict[str, object] = field(default_factory=dict)
    extra_anchors: Tuple[Certificate, ...] = ()
    tls13_rate: float = 0.0
    client_pool: str = "general"

    @property
    def key(self) -> tuple[str, ...]:
        return tuple(cert.fingerprint for cert in self.chain)

    @property
    def length(self) -> int:
        return len(self.chain)

"""End-to-end campus dataset assembly.

``build_campus_dataset`` wires everything together the way the real campus
deployment was wired: a public Web PKI with CT logs → a server population
(public, non-public, hybrid, interception) → a year of TLS connections →
the Zeek monitoring tap.  The result carries both the logs (analyzer input)
and the generator's ground truth (test oracle).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional

from ..core.crosssign import CrossSignDisclosures
from ..core.pipeline import AnalysisResult, ChainStructureAnalyzer
from ..ct.crtsh import CrtShIndex
from ..ct.log import CTLog
from ..tls.interception import InterceptionMiddlebox
from ..truststores.builtin import PublicPKI, build_public_pki
from ..truststores.registry import PublicDBRegistry
from ..zeek.format import write_zeek_log
from ..zeek.records import SSLRecord, X509Record
from ..zeek.sensor import (
    BorderSensor,
    RawFlow,
    dns_query_bytes,
    http_request_bytes,
    ssh_banner_bytes,
)
from ..zeek.tap import JoinedConnection, MonitoringTap, join_logs
from .hybrid_population import build_hybrid_population
from .population import (
    build_interception_population,
    build_nonpublic_population,
    build_public_population,
)
from .profiles import DEFAULT_SCALE, SMALL_SCALE, ScaleConfig, build_vendor_directory
from .spec import ChainSpec
from .workload import GENERATION_SHARDS, WorkloadGenerator

__all__ = ["CampusDataset", "GenerationContext", "build_campus_dataset",
           "build_generation_context", "cached_campus_dataset",
           "resolve_scale"]


def resolve_scale(scale: str | ScaleConfig) -> ScaleConfig:
    if isinstance(scale, ScaleConfig):
        return scale
    presets = {"small": SMALL_SCALE, "default": DEFAULT_SCALE}
    try:
        return presets[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(presets)}"
        ) from None


@dataclass
class CampusDataset:
    """Everything one simulated measurement campaign produced."""

    seed: int | str
    scale: ScaleConfig
    pki: PublicPKI
    registry: PublicDBRegistry
    ct_log: CTLog
    ct_index: CrtShIndex
    middleboxes: List[InterceptionMiddlebox]
    specs: List[ChainSpec]
    tap: MonitoringTap
    disclosures: CrossSignDisclosures
    #: Present when the workload was routed through the DPD border sensor
    #: (``noise_ratio > 0``): counts of TLS vs skipped non-TLS flows.
    sensor: Optional[BorderSensor] = None
    _joined: Optional[List[JoinedConnection]] = None
    _analysis: Optional[AnalysisResult] = None

    # -- ground truth ------------------------------------------------------------

    def truth_by_chain_key(self) -> Dict[tuple, ChainSpec]:
        return {spec.key: spec for spec in self.specs}

    def specs_in_category(self, category_truth: str) -> List[ChainSpec]:
        return [s for s in self.specs if s.category_truth == category_truth]

    # -- analyzer input ------------------------------------------------------------

    @property
    def ssl_records(self) -> List[SSLRecord]:
        return self.tap.ssl_records

    @property
    def x509_records(self) -> List[X509Record]:
        return self.tap.x509_records

    def joined(self) -> List[JoinedConnection]:
        if self._joined is None:
            self._joined = join_logs(self.tap.ssl_records,
                                     self.tap.x509_records)
        return self._joined

    def analyzer(self) -> ChainStructureAnalyzer:
        return ChainStructureAnalyzer(
            self.registry,
            ct_index=self.ct_index,
            vendor_directory=build_vendor_directory(),
            disclosures=self.disclosures,
        )

    def analyze(self) -> AnalysisResult:
        """Run the full Figure 2 pipeline over the logs (cached)."""
        if self._analysis is None:
            self._analysis = self.analyzer().analyze_connections(self.joined())
        return self._analysis

    # -- log files --------------------------------------------------------------------

    def write_zeek_logs(self, directory: str, *,
                        open_time: Optional[datetime] = None
                        ) -> tuple[str, str]:
        """Write ``ssl.log`` and ``x509.log`` in Zeek ASCII format.

        ``open_time`` pins the ``#open``/``#close`` header stamps, making
        the files byte-reproducible (the parallel generation engine pins
        them to ``STUDY_START`` for its shard files).
        """
        os.makedirs(directory, exist_ok=True)
        ssl_path = os.path.join(directory, "ssl.log")
        x509_path = os.path.join(directory, "x509.log")
        write_zeek_log(ssl_path, "ssl", SSLRecord.FIELDS, SSLRecord.TYPES,
                       self.tap.ssl_rows(), open_time=open_time)
        write_zeek_log(x509_path, "x509", X509Record.FIELDS, X509Record.TYPES,
                       self.tap.x509_rows(), open_time=open_time)
        return ssl_path, x509_path

    @property
    def connection_count(self) -> int:
        return len(self.tap.ssl_records)

    @property
    def certificate_count(self) -> int:
        return len(self.tap.x509_records)


_DATASET_CACHE: Dict[tuple, CampusDataset] = {}


def generator_config_token(scale: ScaleConfig) -> str:
    """Cache-key token naming the generator code + configuration.

    Folds in the package version, the study-window shard layout, and
    every :class:`ScaleConfig` field — so a code change that alters what
    a (seed, scale) pair produces also changes the token and cannot serve
    a stale memoized dataset to the CLI or reportgen.
    """
    from .. import __version__

    fields = ",".join(f"{f.name}={getattr(scale, f.name)!r}"
                      for f in dataclasses.fields(scale))
    return f"v{__version__}:shards{GENERATION_SHARDS}:{fields}"


def cached_campus_dataset(seed: int | str = 0,
                          scale: str | ScaleConfig = "small") -> CampusDataset:
    """Process-wide cache for expensive dataset builds.

    Benchmarks and integration tests share one immutable-by-convention
    dataset per (seed, generator configuration); callers must not mutate
    it.  The key carries :func:`generator_config_token`, not just the
    scale's name, so version or config drift invalidates naturally.
    """
    resolved = resolve_scale(scale)
    key = (seed, generator_config_token(resolved))
    dataset = _DATASET_CACHE.get(key)
    if dataset is None:
        dataset = build_campus_dataset(seed=seed, scale=resolved)
        _DATASET_CACHE[key] = dataset
    return dataset


@dataclass
class GenerationContext:
    """Everything workers need to generate connections for (seed, scale).

    The expensive deterministic substrate of :func:`build_campus_dataset`
    — PKI, CT log/index, server populations, workload generator — without
    any connections simulated yet.  Parallel generation workers rebuild
    this per process from just (seed, scale) and then simulate only their
    own study-window shards.
    """

    seed: int | str
    scale: ScaleConfig
    pki: PublicPKI
    registry: PublicDBRegistry
    ct_log: CTLog
    ct_index: CrtShIndex
    middleboxes: List[InterceptionMiddlebox]
    specs: List[ChainSpec]
    generator: WorkloadGenerator


def build_generation_context(seed: int | str = 0,
                             scale: str | ScaleConfig = "small"
                             ) -> GenerationContext:
    """Build the deterministic pre-workload substrate for (seed, scale)."""
    scale = resolve_scale(scale)
    pki = build_public_pki(seed=seed)
    registry = pki.registry
    ct_log = CTLog(
        f"campus-ct-{seed}",
        accepted_roots=[ca.root.certificate for ca in pki.cas.values()],
    )

    specs: List[ChainSpec] = []
    specs.extend(build_public_population(pki, seed=seed, scale=scale,
                                         ct_log=ct_log))
    specs.extend(build_hybrid_population(
        pki, seed=seed, mean_connections=scale.conns_per_hybrid_chain,
        ct_log=ct_log))
    specs.extend(build_nonpublic_population(pki, seed=seed, scale=scale))
    interception_specs, middleboxes = build_interception_population(
        pki, seed=seed, scale=scale)
    specs.extend(interception_specs)

    return GenerationContext(
        seed=seed,
        scale=scale,
        pki=pki,
        registry=registry,
        ct_log=ct_log,
        ct_index=CrtShIndex([ct_log]),
        middleboxes=middleboxes,
        specs=specs,
        generator=WorkloadGenerator(registry, seed=seed, scale=scale),
    )


def build_campus_dataset(seed: int | str = 0,
                         scale: str | ScaleConfig = "small",
                         *, noise_ratio: float = 0.0) -> CampusDataset:
    """Simulate one 12-month campus measurement campaign.

    ``scale`` is ``"small"`` (fast, for tests), ``"default"`` (benchmark
    fidelity), or a custom :class:`ScaleConfig`.  The same seed and scale
    always produce the identical dataset.

    ``noise_ratio > 0`` routes the workload through the DPD border sensor
    together with that fraction of non-TLS flows (HTTP/SSH/DNS).  The noise
    is generated from an independent RNG stream and is dropped by DPD, so
    the logged dataset is byte-identical to the noise-free build — which is
    precisely what the sensor is supposed to guarantee.
    """
    context = build_generation_context(seed=seed, scale=scale)
    scale = context.scale
    pki = context.pki
    registry = context.registry
    ct_log = context.ct_log
    specs = context.specs
    middleboxes = context.middleboxes
    ct_index = context.ct_index
    generator = context.generator
    sensor: Optional[BorderSensor] = None
    if noise_ratio > 0:
        import random as _random

        sensor = BorderSensor()
        tap = sensor.tap
        noise_rng = _random.Random(f"noise:{seed}")
        noise_payloads = (http_request_bytes(), ssh_banner_bytes(),
                          dns_query_bytes())
        for record in generator.generate(specs):
            while noise_rng.random() < noise_ratio:
                sensor.process(RawFlow(noise_rng.choice(noise_payloads)))
            sensor.process(RawFlow.from_connection(record))
    else:
        tap = MonitoringTap()
        tap.observe_all(generator.generate(specs))

    return CampusDataset(
        seed=seed,
        scale=scale,
        pki=pki,
        registry=registry,
        ct_log=ct_log,
        ct_index=ct_index,
        middleboxes=middleboxes,
        specs=specs,
        tap=tap,
        disclosures=CrossSignDisclosures.from_pki(pki),
        sensor=sensor,
    )

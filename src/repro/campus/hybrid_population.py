"""Generation of the 321 hybrid chains (§4.2; Tables 3, 6, 7).

The hybrid population is small and fully structural, so it is generated at
full fidelity at every scale, with ground-truth labels for every chain:

* 36 chains that *are* complete matched paths — 26 non-public leaves
  anchored to public roots (16 government / 10 corporate, 3 with expired
  leaves) and 10 public paths chained to a private re-issue (Scalyr /
  Canal+ pattern);
* 70 chains *containing* a complete matched path plus unnecessary
  certificates (14 Fake-LE staging, enterprise/Athenz appendages, extra
  roots, stray leading leaves);
* 215 chains with *no* complete matched path, following Table 7's taxonomy
  exactly (108/13/61/27/5/1), of which 56 carry a public leaf whose issuing
  intermediate is missing.

19 servers present two distinct chains over the year (10 in the
contains-complete group via different unnecessary certificates, 9 in the
no-path group via leaf replacement).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import timedelta
from typing import List, Optional, Sequence

from ..ct.log import CTLog
from ..truststores.builtin import PublicPKI
from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from ..x509.generation import CertificateFactory, IssuingAuthority, name
from .spec import ChainSpec, ClientMix, MIX_PRESETS

__all__ = ["build_hybrid_population"]

#: Certificates are minted two months before the observation window so
#: every non-expired leaf is valid for the whole year of connections.
_CERT_EPOCH = CertificateFactory().epoch - timedelta(days=60)
#: Leaf lifetime covering mint jitter + the full 12-month window.
_LEAF_DAYS = 460

_LOCALHOST_DN = DistinguishedName.parse(
    "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
    "L=Sometown,ST=Someprovince,C=US")


@dataclass
class _Ctx:
    pki: PublicPKI
    factory: CertificateFactory
    rng: random.Random
    mean_connections: float
    ct_log: Optional[CTLog]
    specs: List[ChainSpec]
    server_counter: int = 0

    def next_server(self) -> str:
        self.server_counter += 1
        return f"hybrid-srv-{self.server_counter:04d}"

    def add(self, chain: Sequence[Certificate], hostname: str, *,
            mix: ClientMix, labels: dict, server_id: Optional[str] = None,
            mean_scale: float = 1.0, sni_rate: float = 0.95) -> ChainSpec:
        spec = ChainSpec(
            chain=tuple(chain),
            hostname=hostname,
            category_truth="hybrid",
            mix=mix,
            port_model="hybrid",
            mean_connections=self.mean_connections * mean_scale,
            sni_rate=sni_rate,
            server_id=server_id or self.next_server(),
            labels=dict(labels),
            client_pool="hybrid",
        )
        self.specs.append(spec)
        return spec


def build_hybrid_population(pki: PublicPKI, *, seed: int | str,
                            mean_connections: float,
                            ct_log: Optional[CTLog] = None) -> List[ChainSpec]:
    """Generate all 321 hybrid chain specs with ground-truth labels."""
    ctx = _Ctx(
        pki=pki,
        factory=CertificateFactory(seed=f"hybrid:{seed}",
                                   epoch=_CERT_EPOCH),
        rng=random.Random(f"hybrid-pop:{seed}"),
        mean_connections=mean_connections,
        ct_log=ct_log,
        specs=[],
    )
    _complete_only(ctx)
    _contains_complete(ctx)
    _no_path(ctx)
    assert len(ctx.specs) == 321, len(ctx.specs)
    return ctx.specs


# -- group 1: chain IS a complete matched path (36) -----------------------------


def _anchored_chain(ctx: _Ctx, public_parent: IssuingAuthority,
                    ca_dn: DistinguishedName, host: str, *,
                    expired: bool = False,
                    expired_years: int = 2) -> tuple[Certificate, ...]:
    """leaf ← private CA ← public intermediate (root omitted on the wire)."""
    private_ca = ctx.factory.intermediate(public_parent, ca_dn)
    if expired:
        not_before = (ctx.factory.epoch
                      - timedelta(days=365 * expired_years + 400))
        leaf = ctx.factory.leaf(private_ca, name(host), dns_names=[host],
                                not_before=not_before, lifetime_days=365)
    else:
        leaf = ctx.factory.leaf(private_ca, name(host), dns_names=[host],
                                lifetime_days=_LEAF_DAYS)
    chain = (leaf, private_ca.certificate, public_parent.certificate)
    if ctx.ct_log is not None:
        # Standards require these leaves in CT (§4.2); submission includes
        # the issuing path so the log can anchor it.
        ctx.ct_log.add_chain(list(chain))
    return chain


def _complete_only(ctx: _Ctx) -> None:
    pki = ctx.pki
    government = [
        # 6 × U.S. Federal PKI (Veterans Affairs pattern).
        *((pki.ca("federal_pki").intermediates["verizon_ssp"],
           name(f"Veterans Affairs CA B{i}", o="U.S. Government"),
           f"vaww{i}.va.gov") for i in range(1, 7)),
        # 5 × Government of Korea (KLID) anchored via KISA.
        *((pki.ca("kisa").intermediates["gpki"],
           name(f"KLID LocalGov CA {i}", o="Government of Korea"),
           f"svc{i}.gov.kr") for i in range(1, 6)),
        # 5 × Brazil's ITI / ICP-Brasil.
        *((pki.ca("icp_brasil").intermediates["ssl"],
           name(f"AC ITI SSL {i}", o="Instituto Nacional de Tecnologia da "
                                     "Informacao - ITI"),
           f"portal{i}.gov.br") for i in range(1, 6)),
    ]
    corporate = [
        # 5 × Symantec private SSL under the Symantec public hierarchy.
        *((pki.ca("symantec").intermediates["class3_g4"],
           name(f"Symantec Private SSL SHA1 CA {i}",
                o="Symantec Corporation"),
           f"private{i}.symantec.example") for i in range(1, 6)),
        # 5 × SignKorea (corporate despite the name — Table 6).
        *((pki.ca("kisa").intermediates["gpki"],
           name(f"SignKorea CA {i}", o="SignKorea"),
           f"sign{i}.signkorea.example") for i in range(1, 6)),
    ]
    expired_slots = {3, 12, 20}  # 3 chains with expired leaves (§4.2)
    deep_expired = 3             # the one whose expiry exceeds 5 years
    for index, (parent, ca_dn, host) in enumerate(government + corporate):
        expired = index in expired_slots
        chain = _anchored_chain(
            ctx, parent, ca_dn, host, expired=expired,
            expired_years=6 if index == deep_expired else 2)
        entity = "government" if index < len(government) else "corporate"
        mix = (ClientMix(permissive=0.9, browser=0.1) if expired
               else MIX_PRESETS["hybrid_complete"])
        ctx.add(chain, host, mix=mix, labels={
            "hybrid_category": "is-complete-matched-path",
            "complete_kind": "non-pub-chained-to-pub",
            "entity": entity,
            "expired_leaf": expired,
        })

    # 10 × public path chained to a private re-issue of the root subject.
    reissuers = [("Scalyr", "app.scalyr.com", "usertrust", "sectigo_dv")] * 6 \
        + [("Canal+", "backend.canal-plus.com", "digicert", "tls2020")] * 4
    for index, (org, base_host, ca_name, inter_label) in enumerate(reissuers):
        ca = ctx.pki.ca(ca_name)
        inter = ca.intermediates[inter_label]
        host = f"node{index}.{base_host}"
        leaf = ctx.factory.leaf(inter, name(host), dns_names=[host],
                                lifetime_days=_LEAF_DAYS)
        reissue = ctx.factory.mismatched_pair_cert(
            name(f"{org} Internal CA", o=org), ca.root.subject)
        chain = (leaf, inter.certificate, ca.root.certificate, reissue)
        ctx.add(chain, host, mix=MIX_PRESETS["hybrid_complete"], labels={
            "hybrid_category": "is-complete-matched-path",
            "complete_kind": "pub-chained-to-prv",
            "entity": "corporate",
            "reissuer": org,
        })


# -- group 2: chain CONTAINS a complete matched path (70) -------------------------


def _public_path(ctx: _Ctx, ca_name: str, inter_label: str, host: str,
                 include_root: bool = True) -> tuple[Certificate, ...]:
    ca = ctx.pki.ca(ca_name)
    inter = ca.intermediates[inter_label]
    leaf = ctx.factory.leaf(inter, name(host), dns_names=[host],
                            lifetime_days=_LEAF_DAYS)
    if include_root:
        return (leaf, inter.certificate, ca.root.certificate)
    return (leaf, inter.certificate)


def _contains_complete(ctx: _Ctx) -> None:
    rotation = [("lets_encrypt", "R3"), ("digicert", "tls2020"),
                ("comodo", "dv"), ("godaddy", "g2"),
                ("usertrust", "sectigo_dv"), ("globalsign", "ov2018")]

    def pick(i: int) -> tuple[str, str]:
        return rotation[i % len(rotation)]

    # 14 × Let's Encrypt staging placeholder (Appendix F.2).
    for i in range(14):
        host = f"www.staging{i}.example"
        path = _public_path(ctx, "lets_encrypt", "R3", host)
        fake = ctx.factory.mismatched_pair_cert(
            name("Fake LE Root X1"), name("Fake LE Intermediate X1"))
        ctx.add((*path, fake), host, mix=MIX_PRESETS["hybrid_contains"],
                labels={"hybrid_category": "contains-complete-matched-path",
                        "pattern": "fake-le"})

    # 10 × enterprise self-signed appended ("tester" — HP style).
    for i in range(10):
        ca_name, inter_label = pick(i)
        host = f"webauth{i}.hpconnected.example"
        path = _public_path(ctx, ca_name, inter_label, host)
        tester = ctx.factory.self_signed(name("tester", o="HP Inc"))
        ctx.add((*path, tester), host, mix=MIX_PRESETS["hybrid_contains"],
                labels={"hybrid_category": "contains-complete-matched-path",
                        "pattern": "enterprise-self-signed"})

    # 10 × Athenz software-appended self-signed certificates.
    for i in range(10):
        ca_name, inter_label = pick(i + 1)
        host = f"svc{i}.athenz.example"
        path = _public_path(ctx, ca_name, inter_label, host)
        athenz = ctx.factory.self_signed(
            name(f"athenz.instance{i}", o="Athenz"))
        ctx.add((*path, athenz), host, mix=MIX_PRESETS["hybrid_contains"],
                labels={"hybrid_category": "contains-complete-matched-path",
                        "pattern": "athenz"})

    # 10 dual-chain servers: the same valid path delivered with *different*
    # extra public roots across connections (20 chains).  An enterprise
    # self-signed certificate rides along in both variants — that is what
    # makes these chains hybrid rather than public-only.
    root_pool = [ctx.pki.ca(ca).root.certificate
                 for ca in ("godaddy", "globalsign", "amazon")]
    for i in range(10):
        ca_name, inter_label = pick(i + 2)
        host = f"dual{i}.corp.example"
        path = _public_path(ctx, ca_name, inter_label, host)
        corp_cert = ctx.factory.self_signed(
            name(f"dual{i} internal", o=f"Dual Corp {i}"))
        server_id = ctx.next_server()
        # The extra root must not be the chain's own root, or the appended
        # certificate would chain onto the path instead of dangling.
        own_root = ctx.pki.ca(ca_name).root.certificate
        extra_roots = [r for r in root_pool
                       if not r.subject.matches(own_root.subject)][:2]
        for variant, extra_root in enumerate(extra_roots):
            # The variants differ only in the appended root; the leaf is
            # shared, so the chains are distinct but the server is one.
            ctx.add((*path, extra_root, corp_cert), host,
                    mix=MIX_PRESETS["hybrid_contains"], server_id=server_id,
                    labels={"hybrid_category":
                            "contains-complete-matched-path",
                            "pattern": "extra-public-root",
                            "variant": variant,
                            "dual_server": True})

    # 4 × stray leaf delivered before the complete path (§4.2's
    # leading-leaf misconfiguration; validation-hostile).  The stray leaf
    # comes from the operator's private CA, making the chain hybrid.
    for i in range(4):
        ca_name, inter_label = pick(i + 3)
        host = f"lead{i}.example"
        path = _public_path(ctx, ca_name, inter_label, host)
        stray = ctx.factory.mismatched_pair_cert(
            name(f"Lead Corp {i} Issuing CA", o=f"Lead Corp {i}"),
            name(f"old-{host}"))
        ctx.add((stray, *path), host,
                mix=MIX_PRESETS["hybrid_contains_stray_leaf"],
                labels={"hybrid_category": "contains-complete-matched-path",
                        "pattern": "stray-leaf-before-path"})

    # 12 × misc: non-public intermediate-looking certificates appended.
    # Two servers pile up many junk certificates (Figure 4's columns reach
    # ~12 cells; chains this heavy also overflow the TCP initial congestion
    # window — the §6.1 latency cost).
    junk_counts = [1] * 10 + [6, 9]
    for i, junk_count in enumerate(junk_counts):
        ca_name, inter_label = pick(i + 5)
        host = f"misc{i}.corp.example"
        path = _public_path(ctx, ca_name, inter_label, host)
        if junk_count == 1:
            junk = (ctx.factory.mismatched_pair_cert(
                name(f"Corp Issuing CA {i}", o=f"Corp {i}"),
                name(f"Corp Sub CA {i}", o=f"Corp {i}")),)
        else:
            # Heavy servers append fat 4096-bit enterprise roots.
            junk = tuple(
                ctx.factory.root(
                    name(f"Corp Trust Anchor {i}.{j}",
                         o=f"Corp {i} Enterprise Services Division"),
                    key_bits=4096).certificate
                for j in range(junk_count))
        ctx.add((*path, *junk), host, mix=MIX_PRESETS["hybrid_contains"],
                labels={"hybrid_category": "contains-complete-matched-path",
                        "pattern": "misc-nonpub-appendage",
                        "junk_count": junk_count})


# -- group 3: NO complete matched path (215) ----------------------------------------

#: Ladder depths that give the long broken chains their low mismatch
#: ratios, spreading Figure 6's histogram across 0.1-0.4 as in the paper.
_LONG_DEPTHS = (4, 5, 7, 9, 14, 19)


def _nonpub_ladder(ctx: _Ctx, org: str, depth: int) -> list[Certificate]:
    """``depth`` non-public intermediates in wire order (deepest first).

    Every adjacent pair inside the ladder matches, but the ladder's
    self-signed root is *not* delivered, so the run can never become a
    complete matched path (no leaf) and never triggers the appended-root
    taxonomy branch (the last certificate is not self-signed).
    """
    parent = ctx.factory.root(name(f"{org} Hidden Root", o=org))
    authorities = []
    for level in range(depth):
        parent = ctx.factory.intermediate(
            parent, name(f"{org} CA L{depth - level}", o=org), path_len=None)
        authorities.append(parent)
    return [ia.certificate for ia in reversed(authorities)]


def _anchored_tail(ctx: _Ctx, org: str, index: int,
                   depth: int) -> list[Certificate]:
    """A matched run of non-public intermediates hanging under a public
    intermediate (delivered last) — a valid hybrid sub-chain."""
    rotation = [("usertrust", "sectigo_dv"), ("digicert", "sha2"),
                ("globalsign", "ov2018")]
    ca_name, label = rotation[index % len(rotation)]
    public_parent = ctx.pki.ca(ca_name).intermediates[label]
    parent = public_parent
    authorities = []
    for level in range(depth):
        parent = ctx.factory.intermediate(
            parent, name(f"{org} Sub CA {depth - level}", o=org),
            path_len=None)
        authorities.append(parent)
    return [ia.certificate for ia in reversed(authorities)] + [
        public_parent.certificate]


def _no_path(ctx: _Ctx) -> None:
    rotation = [("lets_encrypt", "R3"), ("digicert", "sha2"),
                ("godaddy", "g2"), ("globalsign", "ov2018"),
                ("comodo", "dv"), ("usertrust", "sectigo_dv")]

    def inter_cert(i: int) -> Certificate:
        ca_name, label = rotation[i % len(rotation)]
        return ctx.pki.ca(ca_name).intermediates[label].certificate

    # 108 x non-public self-signed leaf followed by mismatched pairs;
    # 100 use the localhost-style identical DN, 8 use custom DNs.
    # 48 are short chains (ratio 0.5-1.0); 60 carry a long matched ladder
    # after the mismatches (ratio 0.1-0.4).  5 servers present two chains
    # (leaf replacement): 103 servers.
    dup_budget = 5
    made = 0
    server_index = 0
    while made < 108:
        host = f"ss{server_index}.internal.example"
        server_id = ctx.next_server()
        variants = 2 if dup_budget > 0 and server_index % 20 == 7 else 1
        if variants == 2:
            dup_budget -= 1
        shared_tail: tuple[Certificate, ...] | None = None
        for _ in range(variants):
            if made >= 108:
                break
            leaf_dn = (_LOCALHOST_DN if made < 100
                       else name(f"appliance{server_index}.local",
                                 o=f"Appliance {server_index}"))
            leaf = ctx.factory.self_signed(leaf_dn, lifetime_days=730)
            # Dual-chain servers model *leaf replacement*: the second
            # variant renews the leaf but delivers the identical tail.
            if shared_tail is None:
                if made < 48:
                    shared_tail = (inter_cert(made),)
                else:
                    depth = _LONG_DEPTHS[made % len(_LONG_DEPTHS)]
                    ladder = _nonpub_ladder(ctx, f"SSOrg {made}", depth)
                    shared_tail = (inter_cert(made), *ladder)
            chain = (leaf, *shared_tail)
            ctx.add(chain, host, mix=MIX_PRESETS["hybrid_no_path"],
                    server_id=server_id,
                    labels={"hybrid_category": "no-complete-matched-path",
                            "no_path_category":
                            "nonpub-self-signed-leaf+mismatches",
                            "dual_leaf_replacement": variants == 2})
            made += 1
        server_index += 1
    assert dup_budget == 0

    # 13 x self-signed leaf replacing the original leaf of a valid
    # sub-chain: 4 short public-only sub-chains, 9 longer anchored tails.
    for i in range(13):
        host = f"replaced{i}.example"
        ss_leaf = ctx.factory.self_signed(name(host))
        if i < 4:
            ca_name, label = rotation[i % len(rotation)]
            ca = ctx.pki.ca(ca_name)
            chain = (ss_leaf, ca.intermediates[label].certificate,
                     ca.root.certificate)
        else:
            tail = _anchored_tail(ctx, f"ReplOrg {i}", i, depth=2 + i % 4)
            chain = (ss_leaf, *tail)
        ctx.add(chain, host, mix=MIX_PRESETS["hybrid_no_path"],
                labels={"hybrid_category": "no-complete-matched-path",
                        "no_path_category":
                        "nonpub-self-signed-leaf+valid-subchain"})

    # 61 x all pairs mismatched: 35 with a public leaf missing its issuer,
    # 26 with a non-public distinct-name leaf.  4 servers x 2 chains.
    dup_budget = 4
    made = 0
    server_index = 0
    while made < 61:
        host = f"broken{server_index}.example"
        server_id = ctx.next_server()
        variants = 2 if dup_budget > 0 and server_index % 12 == 5 else 1
        if variants == 2:
            dup_budget -= 1
        shared_tail = None
        leaf_template = None
        for _ in range(variants):
            if made >= 61:
                break
            if made < 35:
                if shared_tail is None or leaf_template != "public":
                    ca_name, label = rotation[made % len(rotation)]
                    shared_tail = (inter_cert(made + 1),
                                   ctx.factory.mismatched_pair_cert(
                                       name(f"odd-issuer-{made}"),
                                       name(f"odd-subject-{made}")))
                    leaf_template = "public"
                ca_name, label = rotation[made % len(rotation)] \
                    if variants == 1 else rotation[server_index % len(rotation)]
                leaf = ctx.factory.leaf(
                    ctx.pki.ca(ca_name).intermediates[label],
                    name(host), dns_names=[host], lifetime_days=_LEAF_DAYS)
                chain = (leaf, *shared_tail)
                missing = True
            else:
                if shared_tail is None or leaf_template != "nonpub":
                    shared_tail = (inter_cert(made),)
                    leaf_template = "nonpub"
                leaf = ctx.factory.mismatched_pair_cert(
                    name(f"ghost-ca-{server_index}"), name(host))
                chain = (leaf, *shared_tail)
                missing = False
            ctx.add(chain, host, mix=MIX_PRESETS["hybrid_no_path"],
                    server_id=server_id,
                    labels={"hybrid_category": "no-complete-matched-path",
                            "no_path_category": "all-pairs-mismatched",
                            "public_leaf_missing_issuer": missing})
            made += 1
        server_index += 1
    assert dup_budget == 0

    # 27 x partial mismatches: 21 with a public leaf missing its issuing
    # intermediate (3 short, 18 with long matched ladders), 6 with a
    # non-public leaf before an anchored matched tail.
    for i in range(27):
        host = f"partial{i}.example"
        ca_name, label = rotation[i % len(rotation)]
        ca = ctx.pki.ca(ca_name)
        if i < 3:
            other_ca = ctx.pki.ca(rotation[(i + 2) % len(rotation)][0])
            leaf = ctx.factory.leaf(ca.intermediates[label], name(host),
                                    dns_names=[host],
                                    lifetime_days=_LEAF_DAYS)
            reissue = ctx.factory.mismatched_pair_cert(
                name(f"Private CA {i}", o=f"Org {i}"),
                other_ca.root.subject)
            chain = (leaf, other_ca.root.certificate, reissue)
            missing = True
        elif i < 21:
            leaf = ctx.factory.leaf(ca.intermediates[label], name(host),
                                    dns_names=[host],
                                    lifetime_days=_LEAF_DAYS)
            depth = _LONG_DEPTHS[i % len(_LONG_DEPTHS)] - 1
            ladder = _nonpub_ladder(ctx, f"PartOrg {i}", depth)
            chain = (leaf, *ladder)
            missing = True
        else:
            leaf = ctx.factory.mismatched_pair_cert(
                name(f"odd-{i}"), name(host))
            tail = _anchored_tail(ctx, f"PartOrg {i}", i, depth=2 + i % 3)
            chain = (leaf, *tail)
            missing = False
        ctx.add(chain, host, mix=MIX_PRESETS["hybrid_no_path"],
                labels={"hybrid_category": "no-complete-matched-path",
                        "no_path_category": "partial-pairs-mismatched",
                        "public_leaf_missing_issuer": missing})

    # 5 x non-public root appended to a truncated public sub-chain.
    for i in range(5):
        host = f"truncated{i}.example"
        ca_name, label = rotation[i % len(rotation)]
        ca = ctx.pki.ca(ca_name)
        nonpub_root = ctx.factory.self_signed(
            name(f"Corp Trust Root {i}", o=f"Corp {i}"),
            include_extensions=True)
        chain = (ca.intermediates[label].certificate, ca.root.certificate,
                 nonpub_root)
        ctx.add(chain, host, mix=MIX_PRESETS["hybrid_no_path"],
                labels={"hybrid_category": "no-complete-matched-path",
                        "no_path_category":
                        "nonpub-root-appended-to-public-subchain"})

    # 1 x non-public root plus mismatched head pairs.  The head is a
    # non-public certificate so this chain does not inflate the
    # public-leaf-missing-issuer count (the paper's 56 excludes it).
    nonpub_root = ctx.factory.self_signed(name("Lone Corp Root", o="Lone"),
                                          include_extensions=True)
    chain = (ctx.factory.mismatched_pair_cert(name("Lone Issuing CA"),
                                              name("gateway.lone.example")),
             ctx.pki.ca("godaddy").intermediates["g2"].certificate,
             nonpub_root)
    ctx.add(chain, "lone.example", mix=MIX_PRESETS["hybrid_no_path"],
            labels={"hybrid_category": "no-complete-matched-path",
                    "no_path_category": "nonpub-root+mismatched-pairs"})

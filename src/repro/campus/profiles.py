"""Calibration profiles: every population statistic the paper publishes.

``PaperTargets`` is the single source of truth for the numbers the
simulator is calibrated to and the benchmarks compare against.  The
interception vendor fleet reproduces Table 1's 80 issuers across six
categories with the paper's connection-volume and client-IP proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..core.interception import VendorDirectory

__all__ = ["PaperTargets", "PAPER", "InterceptionVendor", "INTERCEPTION_FLEET",
           "ScaleConfig", "SMALL_SCALE", "DEFAULT_SCALE", "PORT_MODELS",
           "build_vendor_directory"]


@dataclass(frozen=True)
class PaperTargets:
    """Published statistics from the paper (tables, figures, and in-text)."""

    # §3.2.2 / Table 2 ---------------------------------------------------------
    total_chains: int = 731_175
    total_certificates: int = 743_993
    nonpub_chain_share_pct: float = 16.24
    hybrid_chains: int = 321
    interception_chain_share_pct: float = 11.19
    nonpub_connections: int = 216_470_000
    hybrid_connections: int = 78_260
    interception_connections: int = 42_750_000
    nonpub_client_ips: int = 231_228
    hybrid_client_ips: int = 11_933
    interception_client_ips: int = 19_149

    # Table 1 -------------------------------------------------------------------
    interception_issuers: int = 80
    interception_issuer_categories: Tuple[Tuple[str, int, float, int], ...] = (
        ("Security & Network", 31, 94.74, 17_915),
        ("Business & Corporate", 27, 4.99, 4_787),
        ("Health & Education", 10, 0.02, 35),
        ("Government & Public Service", 6, 0.24, 25),
        ("Bank & Finance", 3, 0.004, 14),
        ("Other", 3, 0.004, 73),
    )

    # §4.1 / Figure 1 -------------------------------------------------------------
    public_len2_share_pct: float = 60.0
    nonpub_len1_share_pct: float = 78.10
    interception_len3_share_pct: float = 80.0
    outlier_lengths: Tuple[int, ...] = (3822, 921, 41)

    # §4.2 / Table 3 ---------------------------------------------------------------
    hybrid_complete_only: int = 36
    hybrid_nonpub_to_pub: int = 26
    hybrid_pub_to_private: int = 10
    hybrid_contains_complete: int = 70
    hybrid_no_path: int = 215
    complete_establish_pct: float = 97.69
    contains_establish_pct: float = 92.04
    no_path_establish_pct: float = 57.42
    multi_chain_servers: int = 19
    fake_le_chains: int = 14
    no_path_public_leaf_missing_issuer: int = 56
    no_path_high_mismatch_share_pct: float = 56.74  # ratio >= 0.5

    # Table 6 ------------------------------------------------------------------------
    anchored_corporate: int = 10
    anchored_government: int = 16

    # Table 7 ------------------------------------------------------------------------
    no_path_taxonomy: Tuple[Tuple[str, int], ...] = (
        ("nonpub-self-signed-leaf+mismatches", 108),
        ("nonpub-self-signed-leaf+valid-subchain", 13),
        ("all-pairs-mismatched", 61),
        ("partial-pairs-mismatched", 27),
        ("nonpub-root-appended-to-public-subchain", 5),
        ("nonpub-root+mismatched-pairs", 1),
    )

    # §4.3 ----------------------------------------------------------------------------
    nonpub_single_self_signed_pct: float = 94.19
    nonpub_single_no_sni_pct: float = 86.70
    interception_single_share_pct: float = 13.24
    interception_single_self_signed_pct: float = 93.43
    dga_connections: int = 21_880
    dga_client_ips: int = 761
    dga_validity_days: Tuple[int, int] = (4, 365)

    # Table 8 ---------------------------------------------------------------------------
    nonpub_multi_matched_pct: float = 99.76
    nonpub_multi_contains: int = 142
    nonpub_multi_none: int = 87
    interception_multi_matched_pct: float = 98.94
    interception_multi_contains: int = 56
    interception_multi_none: int = 2_764

    # Table 5 (Appendix D) -----------------------------------------------------------------
    validation_total_chains: int = 12_676
    validation_single: int = 2_568
    validation_is_valid: int = 9_825
    validation_ks_valid: int = 9_821
    validation_is_broken: int = 283
    validation_ks_broken: int = 284
    validation_unrecognized: int = 3

    # §5 revisit ------------------------------------------------------------------------------
    revisit_hybrid_reachable_pct: float = 84.11     # 270/321
    revisit_hybrid_to_public: int = 231
    revisit_hybrid_to_nonpub: int = 4
    revisit_hybrid_still_hybrid: int = 35
    revisit_still_hybrid_complete_clean: int = 9
    revisit_still_hybrid_complete_unnecessary: int = 3
    revisit_nonpub_no_sni_pct: float = 79.49
    revisit_nonpub_scanned: int = 12_404
    revisit_nonpub_now_multi_pct: float = 79.40
    revisit_prev_multi_pct: float = 39.00
    revisit_prev_single_self_signed_pct: float = 53.44
    revisit_prev_single_distinct_pct: float = 7.56
    revisit_multi_complete_pct: float = 97.61

    # Derived convenience ------------------------------------------------------------------------
    @property
    def nonpub_chains(self) -> int:
        return round(self.total_chains * self.nonpub_chain_share_pct / 100)

    @property
    def interception_chains(self) -> int:
        return round(self.total_chains * self.interception_chain_share_pct / 100)

    @property
    def public_chains(self) -> int:
        return (self.total_chains - self.nonpub_chains
                - self.interception_chains - self.hybrid_chains)


PAPER = PaperTargets()


# -- interception fleet (Table 1) -------------------------------------------------

@dataclass(frozen=True, slots=True)
class InterceptionVendor:
    vendor: str
    category: str
    #: Relative connection volume within the whole interception population.
    weight: float
    #: Appliances presenting a bare self-signed substitute (§4.3: 13.24 %
    #: of interception chains are single-certificate, 93.43 % of those
    #: self-signed).
    single_self_signed: bool = False
    #: Appliances delivering only the minted leaf without its chain — the
    #: non-self-signed single-certificate tail.
    single_leaf_only: bool = False
    #: Depth of the substitute chain (leaf + intermediates + root).
    chain_depth: int = 3


def _fleet() -> tuple[InterceptionVendor, ...]:
    security = [
        ("Zscaler", 30.0), ("Fortinet", 22.0), ("McAfee Web Gateway", 12.0),
        ("FireEye", 8.0), ("Palo Alto Networks", 6.0), ("Blue Coat ProxySG", 4.0),
        ("Cisco Umbrella", 3.0), ("Sophos", 2.0), ("Check Point", 1.5),
        ("Forcepoint", 1.2), ("Netskope", 1.0), ("Barracuda", 0.8),
        ("iboss", 0.7), ("WatchGuard", 0.6), ("SonicWall", 0.5),
        ("Untangle", 0.4), ("Smoothwall", 0.3), ("ContentKeeper", 0.3),
        ("Trend Micro IWSVA", 0.25), ("Kaspersky Web Control", 0.2),
        ("Bitdefender GravityZone", 0.2), ("ESET SSL Filter", 0.15),
        ("Avast Web Shield", 0.15), ("AVG Web Shield", 0.1),
        ("Bromium Secure", 0.1), ("Menlo Security", 0.1),
        ("Lightpath Filter", 0.08), ("NetSpark", 0.07),
        ("CyberSift Gateway", 0.05), ("SafeDNS Gateway", 0.05),
        ("GateScanner", 0.04),
    ]
    business = [
        ("Freddie Mac", 1.2), ("Acme Global IT", 0.6), ("Initech Security", 0.5),
        ("Umbrella Corp Proxy", 0.4), ("Globex Gateway", 0.35),
        ("Stark Industries SOC", 0.3), ("Wayne Enterprises Net", 0.25),
        ("Hooli Edge", 0.22), ("Pied Piper Secure", 0.2),
        ("Vandelay Industries", 0.18), ("Dunder Mifflin IT", 0.16),
        ("Wernham Hogg Proxy", 0.14), ("Soylent Systems", 0.13),
        ("Tyrell Net Security", 0.12), ("Cyberdyne Monitor", 0.11),
        ("Massive Dynamic", 0.1), ("Aperture Gateway", 0.09),
        ("Black Mesa Net", 0.08), ("Oscorp Shield", 0.07),
        ("LexCorp Filter", 0.06), ("Weyland-Yutani Sec", 0.05),
        ("Omni Consumer Net", 0.05), ("Virtucon Proxy", 0.04),
        ("Gringotts Gateway", 0.04), ("Monsters Inc Scare-Proxy", 0.03),
        ("Duff Networks", 0.03), ("Sirius Cybernetics", 0.02),
    ]
    health_edu = [
        ("Securly", 0.008), ("Madison Public Schools", 0.003),
        ("Lightspeed Systems", 0.002), ("GoGuardian", 0.002),
        ("County School District 12", 0.001), ("Linewize", 0.001),
        ("Mercy Hospital IT", 0.001), ("St. Jude Net Filter", 0.001),
        ("Campus Health Proxy", 0.0005), ("EduSafe Filter", 0.0005),
    ]
    government = [
        ("U.S. Department of Transportation", 0.1),
        ("U.S. Department of Energy", 0.06),
        ("State Revenue Office", 0.04), ("City Utilities Board", 0.02),
        ("County Clerk Network", 0.01), ("Public Transit Authority", 0.01),
    ]
    finance = [
        ("Nationwide", 0.002), ("First Midwest Trust", 0.001),
        ("Harbor Credit Union", 0.001),
    ]
    other = [
        ("Roadside Assistance Net", 0.002), ("Hobbyist Proxy", 0.001),
        ("Unlabeled Appliance 77", 0.001),
    ]
    # Vendors whose appliances present a bare self-signed substitute —
    # chosen so their combined traffic weight lands the §4.3 single-chain
    # share near 13 %, with ~93 % of singles self-signed.
    single_ss = {"FireEye", "Sophos", "Check Point", "Barracuda", "SonicWall",
                 "Freddie Mac", "Securly", "Nationwide", "Hobbyist Proxy"}
    single_leaf = {"Forcepoint"}
    fleet: list[InterceptionVendor] = []
    for names, category in ((security, "Security & Network"),
                            (business, "Business & Corporate"),
                            (health_edu, "Health & Education"),
                            (government, "Government & Public Service"),
                            (finance, "Bank & Finance"),
                            (other, "Other")):
        for i, (vendor, weight) in enumerate(names):
            depth = 2 if (i % 9 == 5) else 3
            fleet.append(InterceptionVendor(
                vendor, category, weight,
                single_self_signed=vendor in single_ss,
                single_leaf_only=vendor in single_leaf,
                chain_depth=depth))
    return tuple(fleet)


INTERCEPTION_FLEET: tuple[InterceptionVendor, ...] = _fleet()
assert len(INTERCEPTION_FLEET) == 80, len(INTERCEPTION_FLEET)


def build_vendor_directory() -> VendorDirectory:
    """The curated keyword table the detector uses (the 'manual
    investigation' knowledge)."""
    directory = VendorDirectory()
    for vendor in INTERCEPTION_FLEET:
        directory.add(vendor.vendor.lower(), vendor.vendor, vendor.category)
    return directory


# -- port models (Table 4) ---------------------------------------------------------

PORT_MODELS: Mapping[str, Tuple[Tuple[int, float], ...]] = {
    "hybrid": ((443, 0.9721), (8443, 0.0136), (8088, 0.0122), (25, 0.0018),
               (9191, 0.0001), (10443, 0.0002)),
    "nonpub_single": ((443, 0.4629), (8888, 0.2152), (33854, 0.1908),
                      (13000, 0.0422), (25, 0.0130), (4433, 0.0759)),
    "nonpub_multi": ((443, 0.8351), (8531, 0.0418), (9093, 0.0285),
                     (38881, 0.0181), (6443, 0.0145), (10250, 0.0620)),
    "interception": ((8013, 0.3540), (4437, 0.2514), (14430, 0.1634),
                     (443, 0.1336), (514, 0.0353), (9443, 0.0623)),
    "public": ((443, 0.97), (8443, 0.02), (993, 0.01)),
}


# -- scale presets -------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleConfig:
    """How far down the paper's populations are scaled.

    Small *structural* populations (the 321 hybrid chains, the 80
    interception vendors, the DGA cluster, the outliers) are generated at
    full fidelity regardless of scale; only the bulk populations and
    per-chain connection counts shrink.
    """

    name: str
    nonpub_chain_scale: float
    public_chain_scale: float
    interception_chain_scale: float
    #: Mean connections per chain, per category.
    conns_per_nonpub_chain: float
    conns_per_public_chain: float
    conns_per_interception_chain: float
    conns_per_hybrid_chain: float
    client_pool: int
    dga_chains: int
    tls13_rate: float = 0.25
    min_connections: int = 2

    def scaled_nonpub_chains(self, paper: PaperTargets = PAPER) -> int:
        return max(40, round(paper.nonpub_chains * self.nonpub_chain_scale))

    def scaled_public_chains(self, paper: PaperTargets = PAPER) -> int:
        return max(60, round(paper.public_chains * self.public_chain_scale))

    def scaled_interception_chains(self, paper: PaperTargets = PAPER) -> int:
        return max(len(INTERCEPTION_FLEET),
                   round(paper.interception_chains * self.interception_chain_scale))


SMALL_SCALE = ScaleConfig(
    name="small",
    nonpub_chain_scale=1 / 1000,
    public_chain_scale=1 / 4000,
    interception_chain_scale=1 / 1000,
    conns_per_nonpub_chain=4,
    conns_per_public_chain=3,
    conns_per_interception_chain=5,
    conns_per_hybrid_chain=12,
    client_pool=3_000,
    dga_chains=4,
    tls13_rate=0.15,
)

DEFAULT_SCALE = ScaleConfig(
    name="default",
    nonpub_chain_scale=1 / 100,
    public_chain_scale=1 / 400,
    interception_chain_scale=1 / 100,
    conns_per_nonpub_chain=18,
    conns_per_public_chain=10,
    conns_per_interception_chain=12,
    conns_per_hybrid_chain=55,
    client_pool=20_000,
    dga_chains=40,
    tls13_rate=0.25,
)

"""12-month connection workload generation.

Turns chain specs into a stream of simulated handshakes observed at the
campus border: per-spec connection volumes, NAT'd client pools sized to the
paper's per-category client-IP counts, per-connection client validation
policies, SNI behaviour, Table 4 port models, and a TLS 1.3 slice whose
certificates the monitor cannot see.
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta, timezone
from typing import Dict, Iterable, Iterator, List, Sequence

from ..tls.connection import ConnectionRecord
from ..tls.handshake import HandshakeSimulator, TLSClient, TLSServer
from ..tls.messages import TLSVersion
from ..tls.policy import (
    BrowserPolicy,
    PermissivePolicy,
    StrictPresentedChainPolicy,
    ValidationPolicy,
)
from ..truststores.registry import PublicDBRegistry
from .profiles import PAPER, PORT_MODELS, ScaleConfig
from .spec import ChainSpec

__all__ = ["ClientPools", "WorkloadGenerator", "STUDY_START", "STUDY_DAYS"]

STUDY_START = datetime(2020, 9, 1, tzinfo=timezone.utc)
STUDY_DAYS = 365


class ClientPools:
    """NAT'd campus client IPs partitioned by traffic population.

    Pool sizes follow the paper's client-IP counts (231,228 non-public /
    11,933 hybrid / 19,149 interception split per Table 1 / 761 DGA),
    scaled to ``scale.client_pool``.
    """

    def __init__(self, seed: int | str, scale: ScaleConfig):
        rng = random.Random(f"clients:{seed}")
        reference_total = PAPER.nonpub_client_ips + PAPER.hybrid_client_ips \
            + PAPER.interception_client_ips
        factor = scale.client_pool / reference_total
        self._pools: Dict[str, List[str]] = {}

        def make_pool(pool_name: str, reference: int, minimum: int = 4) -> None:
            size = max(minimum, round(reference * factor))
            self._pools[pool_name] = [self._ip(rng) for _ in range(size)]

        make_pool("nonpub", PAPER.nonpub_client_ips)
        make_pool("hybrid", PAPER.hybrid_client_ips)
        make_pool("general", round(reference_total * 0.8))
        make_pool("dga", PAPER.dga_client_ips)
        for category, _count, _pct, ips in PAPER.interception_issuer_categories:
            make_pool(f"intercept:{category}", ips)

    @staticmethod
    def _ip(rng: random.Random) -> str:
        return (f"10.{rng.randint(16, 31)}."
                f"{rng.randint(0, 255)}.{rng.randint(1, 254)}")

    def pool(self, pool_name: str) -> List[str]:
        return self._pools.get(pool_name) or self._pools["general"]

    def sizes(self) -> Dict[str, int]:
        return {pool_name: len(ips) for pool_name, ips in self._pools.items()}


class WorkloadGenerator:
    """Drives handshakes for every spec and yields monitor-view records."""

    def __init__(self, registry: PublicDBRegistry, *, seed: int | str,
                 scale: ScaleConfig):
        self.registry = registry
        self.scale = scale
        self._rng = random.Random(f"workload:{seed}")
        self._sim = HandshakeSimulator(seed=f"workload-hs:{seed}")
        self.pools = ClientPools(seed, scale)
        self._policies: Dict[str, ValidationPolicy] = {
            "browser": BrowserPolicy(registry),
            "browser_nss": BrowserPolicy(registry.restricted_to(["Mozilla"])),
            "strict": StrictPresentedChainPolicy(registry),
            "permissive": PermissivePolicy(),
        }
        self._trusting_cache: Dict[tuple, BrowserPolicy] = {}

    # -- policy selection -----------------------------------------------------

    def _policy_for(self, kind: str, spec: ChainSpec) -> ValidationPolicy:
        if kind != "trusting":
            return self._policies[kind]
        cache_key = tuple(a.fingerprint for a in spec.extra_anchors)
        policy = self._trusting_cache.get(cache_key)
        if policy is None:
            policy = BrowserPolicy(self.registry,
                                   extra_anchors=list(spec.extra_anchors))
            self._trusting_cache[cache_key] = policy
        return policy

    def _draw(self, weighted: Sequence[tuple[object, float]]):
        roll = self._rng.random()
        acc = 0.0
        for value, weight in weighted:
            acc += weight
            if roll < acc:
                return value
        return weighted[-1][0]

    # -- generation -------------------------------------------------------------

    def connection_count(self, spec: ChainSpec) -> int:
        if spec.labels.get("outlier"):
            return 1
        jitter = self._rng.uniform(0.6, 1.6)
        return max(self.scale.min_connections,
                   round(spec.mean_connections * jitter))

    def generate_for_spec(self, spec: ChainSpec) -> Iterator[ConnectionRecord]:
        n_visible = self.connection_count(spec)
        n_tls13 = round(n_visible * spec.tls13_rate)
        port = self._draw(tuple(
            (p, w) for p, w in _normalized(PORT_MODELS[spec.port_model])))
        server = TLSServer(
            ip=self._server_ip(spec),
            port=port,
            chain=spec.chain,
            max_version=TLSVersion.TLS13 if n_tls13 else TLSVersion.TLS12,
            hostnames=(spec.hostname,) if spec.hostname else (),
        )
        pool = self.pools.pool(spec.client_pool)
        subset_size = max(1, min(len(pool), round(n_visible * 0.7)))
        clients = [pool[self._rng.randrange(len(pool))]
                   for _ in range(subset_size)]
        mix = spec.mix.weights()
        for i in range(n_visible + n_tls13):
            kind = self._draw(mix)
            version = TLSVersion.TLS13 if i >= n_visible else TLSVersion.TLS12
            client = TLSClient(
                ip=clients[self._rng.randrange(len(clients))],
                policy=self._policy_for(kind, spec),
                version=version,
                sends_sni=self._rng.random() < spec.sni_rate,
            )
            when = STUDY_START + timedelta(
                seconds=self._rng.uniform(0, STUDY_DAYS * 86400))
            outcome = self._sim.connect(client, server, sni=spec.hostname,
                                        when=when)
            yield outcome.record

    def generate(self, specs: Iterable[ChainSpec]) -> Iterator[ConnectionRecord]:
        for spec in specs:
            yield from self.generate_for_spec(spec)

    def _server_ip(self, spec: ChainSpec) -> str:
        # Stable per-server external address (seeded, not hash()-based, so
        # it is reproducible across interpreter runs).
        rng = random.Random(f"srvip:{spec.server_id}")
        return (f"{rng.choice((93, 104, 151, 172, 185, 198, 203))}."
                f"{rng.randint(1, 254)}.{rng.randint(1, 254)}."
                f"{rng.randint(1, 254)}")


def _normalized(entries: Sequence[tuple[int, float]]) -> list[tuple[int, float]]:
    total = sum(w for _, w in entries)
    return [(p, w / total) for p, w in entries]

"""12-month connection workload generation.

Turns chain specs into a stream of simulated handshakes observed at the
campus border: per-spec connection volumes, NAT'd client pools sized to the
paper's per-category client-IP counts, per-connection client validation
policies, SNI behaviour, Table 4 port models, and a TLS 1.3 slice whose
certificates the monitor cannot see.

The study window is partitioned into :data:`GENERATION_SHARDS` fixed
intervals, independent of how many worker processes generate them.  Each
(interval, spec) cell draws from its own deterministically-derived RNG
stream, so any process can generate any cell in isolation and the
shard-major concatenation of cells is byte-identical however the work is
distributed (see ``docs/PERFORMANCE.md``, "Generation stage").
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..tls.connection import ConnectionRecord
from ..tls.handshake import HandshakeSimulator, TLSClient, TLSServer
from ..tls.messages import TLSVersion
from ..tls.policy import (
    BrowserPolicy,
    PermissivePolicy,
    StrictPresentedChainPolicy,
    ValidationPolicy,
)
from ..truststores.registry import PublicDBRegistry
from .profiles import PAPER, PORT_MODELS, ScaleConfig
from .spec import ChainSpec

__all__ = ["ClientPools", "SpecPlan", "WorkloadGenerator",
           "GENERATION_SHARDS", "STUDY_START", "STUDY_DAYS", "shard_window"]

STUDY_START = datetime(2020, 9, 1, tzinfo=timezone.utc)
STUDY_DAYS = 365

#: Fixed number of study-window intervals the workload is generated in.
#: A month-like granularity: fine enough that a worker pool up to 12 wide
#: stays busy, coarse enough that per-cell RNG/simulator setup amortises.
#: Deliberately *not* derived from ``--jobs`` — the interval layout (and
#: therefore every derived RNG stream and the output bytes) must be
#: identical at any worker count.
GENERATION_SHARDS = 12


def shard_window(shard: int, shards: int = GENERATION_SHARDS
                 ) -> Tuple[float, float]:
    """(start_offset_seconds, span_seconds) of one interval of the window."""
    span = STUDY_DAYS * 86400 / shards
    return shard * span, span


class ClientPools:
    """NAT'd campus client IPs partitioned by traffic population.

    Pool sizes follow the paper's client-IP counts (231,228 non-public /
    11,933 hybrid / 19,149 interception split per Table 1 / 761 DGA),
    scaled to ``scale.client_pool``.
    """

    def __init__(self, seed: int | str, scale: ScaleConfig):
        rng = random.Random(f"clients:{seed}")
        reference_total = PAPER.nonpub_client_ips + PAPER.hybrid_client_ips \
            + PAPER.interception_client_ips
        factor = scale.client_pool / reference_total
        self._pools: Dict[str, List[str]] = {}

        def make_pool(pool_name: str, reference: int, minimum: int = 4) -> None:
            size = max(minimum, round(reference * factor))
            self._pools[pool_name] = [self._ip(rng) for _ in range(size)]

        make_pool("nonpub", PAPER.nonpub_client_ips)
        make_pool("hybrid", PAPER.hybrid_client_ips)
        make_pool("general", round(reference_total * 0.8))
        make_pool("dga", PAPER.dga_client_ips)
        for category, _count, _pct, ips in PAPER.interception_issuer_categories:
            make_pool(f"intercept:{category}", ips)

    @staticmethod
    def _ip(rng: random.Random) -> str:
        return (f"10.{rng.randint(16, 31)}."
                f"{rng.randint(0, 255)}.{rng.randint(1, 254)}")

    def pool(self, pool_name: str) -> List[str]:
        return self._pools.get(pool_name) or self._pools["general"]

    def sizes(self) -> Dict[str, int]:
        return {pool_name: len(ips) for pool_name, ips in self._pools.items()}


@dataclass(frozen=True, slots=True)
class SpecPlan:
    """The shard-independent draws for one spec, made once up front.

    Everything that must be identical no matter which worker generates
    which interval lives here: the jittered connection volume, the port,
    the client subset, and each connection's interval assignment.  All of
    it comes from the spec's own ``plan`` RNG stream, derived from the
    workload seed plus a content digest of the spec — never from a shared
    generator-instance stream — so any process recomputes the identical
    plan from just (seed, spec).
    """

    plan_id: str
    n_visible: int
    n_tls13: int
    port: int
    clients: Tuple[str, ...]
    #: Interval index of connection ``i``; indices ``< n_visible`` are the
    #: monitor-visible TLS 1.2 connections, the rest the TLS 1.3 slice.
    shard_of: Tuple[int, ...]
    #: Intervals containing at least one monitor-visible connection —
    #: precomputed for the x509 first-appearance ownership scan.
    visible_shards: frozenset

    @property
    def total(self) -> int:
        return self.n_visible + self.n_tls13


class WorkloadGenerator:
    """Drives handshakes for every spec and yields monitor-view records.

    Generation is cell-structured: :meth:`generate_cell` simulates the
    connections of one (interval, spec) pair from that cell's private RNG
    stream and handshake simulator.  :meth:`generate` walks cells
    shard-major (interval 0 for every spec, then interval 1, ...), which
    is exactly the concatenation order of the parallel engine's per-shard
    log files — so serial output and merged parallel output are
    byte-identical by construction.
    """

    def __init__(self, registry: PublicDBRegistry, *, seed: int | str,
                 scale: ScaleConfig, shards: int = GENERATION_SHARDS):
        self.registry = registry
        self.scale = scale
        self.seed = seed
        self.shards = shards
        self.pools = ClientPools(seed, scale)
        self._policies: Dict[str, ValidationPolicy] = {
            "browser": BrowserPolicy(registry),
            "browser_nss": BrowserPolicy(registry.restricted_to(["Mozilla"])),
            "strict": StrictPresentedChainPolicy(registry),
            "permissive": PermissivePolicy(),
        }
        self._trusting_cache: Dict[tuple, BrowserPolicy] = {}

    # -- policy selection -----------------------------------------------------

    def _policy_for(self, kind: str, spec: ChainSpec) -> ValidationPolicy:
        if kind != "trusting":
            return self._policies[kind]
        cache_key = tuple(a.fingerprint for a in spec.extra_anchors)
        policy = self._trusting_cache.get(cache_key)
        if policy is None:
            policy = BrowserPolicy(self.registry,
                                   extra_anchors=list(spec.extra_anchors))
            self._trusting_cache[cache_key] = policy
        return policy

    @staticmethod
    def _draw(rng: random.Random, weighted: Sequence[tuple[object, float]]):
        roll = rng.random()
        acc = 0.0
        for value, weight in weighted:
            acc += weight
            if roll < acc:
                return value
        return weighted[-1][0]

    # -- per-spec planning ------------------------------------------------------

    @staticmethod
    def _plan_id(spec: ChainSpec) -> str:
        """Content digest naming the spec's RNG streams.

        Derived from what the spec *is* rather than its position in the
        spec list, so a worker holding only (seed, spec) derives the same
        streams as the serial path.  BLAKE2b, never ``hash()`` — stable
        across interpreter runs.
        """
        digest = hashlib.blake2b(digest_size=16)
        for fingerprint in spec.key:
            digest.update(fingerprint.encode("ascii"))
            digest.update(b"\x00")
        for token in (spec.hostname or "", str(spec.server_id),
                      spec.category_truth, spec.port_model, spec.client_pool,
                      str(spec.mean_connections), str(spec.sni_rate),
                      str(spec.tls13_rate)):
            digest.update(token.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def plan_for(self, spec: ChainSpec) -> SpecPlan:
        """Compute the spec's shard-independent plan (volume, port,
        client subset, per-connection interval assignment)."""
        plan_id = self._plan_id(spec)
        rng = random.Random(f"workload:{self.seed}:plan:{plan_id}")
        if spec.labels.get("outlier"):
            n_visible = 1
        else:
            jitter = rng.uniform(0.6, 1.6)
            n_visible = max(self.scale.min_connections,
                            round(spec.mean_connections * jitter))
        n_tls13 = round(n_visible * spec.tls13_rate)
        port = self._draw(rng, tuple(
            (p, w) for p, w in _normalized(PORT_MODELS[spec.port_model])))
        pool = self.pools.pool(spec.client_pool)
        subset_size = max(1, min(len(pool), round(n_visible * 0.7)))
        clients = tuple(pool[rng.randrange(len(pool))]
                        for _ in range(subset_size))
        shard_of = tuple(rng.randrange(self.shards)
                         for _ in range(n_visible + n_tls13))
        return SpecPlan(
            plan_id=plan_id,
            n_visible=n_visible,
            n_tls13=n_tls13,
            port=port,
            clients=clients,
            shard_of=shard_of,
            visible_shards=frozenset(shard_of[:n_visible]),
        )

    def connection_count(self, spec: ChainSpec) -> int:
        return self.plan_for(spec).n_visible

    # -- generation -------------------------------------------------------------

    def _server_for(self, spec: ChainSpec, plan: SpecPlan) -> TLSServer:
        return TLSServer(
            ip=self._server_ip(spec),
            port=plan.port,
            chain=spec.chain,
            max_version=(TLSVersion.TLS13 if plan.n_tls13
                         else TLSVersion.TLS12),
            hostnames=(spec.hostname,) if spec.hostname else (),
        )

    def generate_cell(self, spec: ChainSpec, shard: int, *,
                      plan: Optional[SpecPlan] = None
                      ) -> Iterator[ConnectionRecord]:
        """Simulate one (interval, spec) cell's connections.

        The cell has its own RNG stream and handshake simulator, both
        derived from (seed, interval, spec digest), so it depends on
        nothing generated before it — any worker can produce it, in any
        order, with identical output.
        """
        if plan is None:
            plan = self.plan_for(spec)
        indices = [i for i, s in enumerate(plan.shard_of) if s == shard]
        if not indices:
            return
        stream = f"{self.seed}:{shard:02d}:{plan.plan_id}"
        rng = random.Random(f"workload:{stream}")
        sim = HandshakeSimulator(seed=f"workload-hs:{stream}")
        server = self._server_for(spec, plan)
        start, span = shard_window(shard, self.shards)
        mix = spec.mix.weights()
        clients = plan.clients
        for i in indices:
            kind = self._draw(rng, mix)
            version = (TLSVersion.TLS13 if i >= plan.n_visible
                       else TLSVersion.TLS12)
            client = TLSClient(
                ip=clients[rng.randrange(len(clients))],
                policy=self._policy_for(kind, spec),
                version=version,
                sends_sni=rng.random() < spec.sni_rate,
            )
            when = STUDY_START + timedelta(
                seconds=start + rng.uniform(0, span))
            outcome = sim.connect(client, server, sni=spec.hostname,
                                  when=when)
            yield outcome.record

    def generate_for_spec(self, spec: ChainSpec) -> Iterator[ConnectionRecord]:
        plan = self.plan_for(spec)
        for shard in range(self.shards):
            yield from self.generate_cell(spec, shard, plan=plan)

    def generate_shard(self, specs: Sequence[ChainSpec], shard: int, *,
                       plans: Optional[Sequence[SpecPlan]] = None
                       ) -> Iterator[ConnectionRecord]:
        """One interval's connections across every spec — a worker's unit."""
        if plans is None:
            plans = [self.plan_for(spec) for spec in specs]
        for spec, plan in zip(specs, plans):
            yield from self.generate_cell(spec, shard, plan=plan)

    def generate(self, specs: Iterable[ChainSpec]) -> Iterator[ConnectionRecord]:
        spec_list = list(specs)
        plans = [self.plan_for(spec) for spec in spec_list]
        for shard in range(self.shards):
            yield from self.generate_shard(spec_list, shard, plans=plans)

    def _server_ip(self, spec: ChainSpec) -> str:
        # Stable per-server external address (seeded, not hash()-based, so
        # it is reproducible across interpreter runs).
        rng = random.Random(f"srvip:{spec.server_id}")
        return (f"{rng.choice((93, 104, 151, 172, 185, 198, 203))}."
                f"{rng.randint(1, 254)}.{rng.randint(1, 254)}."
                f"{rng.randint(1, 254)}")


def _normalized(entries: Sequence[tuple[int, float]]) -> list[tuple[int, float]]:
    total = sum(w for _, w in entries)
    return [(p, w / total) for p, w in entries]

"""Bulk chain populations: public-only, non-public-only, interception, DGA,
outliers, and the complex private-PKI meshes.

Calibration sources:

* Figure 1 — public chains are mostly length 2 (root omitted [31]),
  non-public chains 78.10 % single-certificate, interception chains
  predominantly length 3;
* §4.3 — 94.19 % of non-public singles are self-signed; 86.70 % of their
  connections lack SNI; the DGA cluster; Table 8's matched-path shares;
* Table 1 — the 80-vendor interception fleet with category-weighted
  connection volumes;
* Appendix I — intermediates linked to ≥3 intermediates (Figures 7/8).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ct.log import CTLog
from ..tls.interception import InterceptionMiddlebox
from ..truststores.builtin import PublicPKI
from ..x509.certificate import Certificate
from ..x509.generation import DEFAULT_EPOCH, CertificateFactory, IssuingAuthority, name
from .profiles import INTERCEPTION_FLEET, PAPER, ScaleConfig
from .spec import ChainSpec, ClientMix, MIX_PRESETS

from datetime import timedelta

#: See hybrid_population._CERT_EPOCH — mint before the window opens.
_CERT_EPOCH = DEFAULT_EPOCH - timedelta(days=60)
#: Leaf lifetime covering mint jitter + the full 12-month window.
_LEAF_DAYS = 460

__all__ = [
    "build_public_population",
    "build_nonpublic_population",
    "build_interception_population",
    "PUBLIC_DOMAINS",
]

#: Popular public domains: targets for interception and the CT-logged
#: baseline the detector compares against.
PUBLIC_DOMAINS: tuple[str, ...] = tuple(
    f"www.{label}.com" for label in (
        "searchhub", "videostream", "socialgrid", "mailspace", "newsfront",
        "shoponline", "clouddocs", "streamtunes", "photowall", "chatline",
        "mapquestor", "weatherly", "sportscore", "financely", "travelgo",
        "foodiehub", "bookstack", "gamerden", "codeforge", "artboard",
    )
) + ("portal.campus.edu", "lms.campus.edu", "library.campus.edu")


def _random_word(rng: random.Random, length: int) -> str:
    """A pronounceable-ish lowercase label (not DGA-like)."""
    vowels, consonants = "aeiou", "bcdfgklmnprstvz"
    out = []
    for i in range(length):
        out.append(rng.choice(vowels if i % 2 else consonants))
    return "".join(out)


def _random_dga_label(rng: random.Random) -> str:
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(rng.randint(8, 14)))


# -- public-only ----------------------------------------------------------------------


def build_public_population(pki: PublicPKI, *, seed: int | str,
                            scale: ScaleConfig,
                            ct_log: Optional[CTLog] = None) -> List[ChainSpec]:
    """Public-DB-only chains: ≥60 % delivered at length 2 (Figure 1)."""
    rng = random.Random(f"public-pop:{seed}")
    factory = CertificateFactory(seed=f"public-pop:{seed}",
                                 epoch=_CERT_EPOCH)
    count = scale.scaled_public_chains()
    ca_names = [n for n in pki.cas
                if pki.cas[n].intermediates]  # issuing CAs only
    specs: List[ChainSpec] = []
    domains = list(PUBLIC_DOMAINS)
    for i in range(count):
        ca = pki.ca(ca_names[i % len(ca_names)])
        inter_label = list(ca.intermediates)[i % len(ca.intermediates)]
        inter = ca.intermediates[inter_label]
        if i < len(domains):
            host = domains[i]
        else:
            host = f"www.{_random_word(rng, rng.randint(6, 10))}.com"
        leaf = factory.leaf(inter, name(host), dns_names=[host],
                            lifetime_days=_LEAF_DAYS)
        roll = rng.random()
        if roll < 0.62:
            chain: tuple[Certificate, ...] = (leaf, inter.certificate)
        elif roll < 0.90:
            chain = (leaf, inter.certificate, ca.root.certificate)
        elif roll < 0.97:
            chain = (leaf,)
        else:
            # Misconfigured: an extra unrelated public intermediate.
            other = pki.ca(ca_names[(i + 3) % len(ca_names)])
            extra = next(iter(other.intermediates.values())).certificate
            chain = (leaf, inter.certificate, ca.root.certificate, extra)
        if ct_log is not None:
            ct_log.add_chain([leaf, inter.certificate, ca.root.certificate])
        specs.append(ChainSpec(
            chain=chain,
            hostname=host,
            category_truth="public",
            mix=MIX_PRESETS["public"],
            port_model="public",
            mean_connections=scale.conns_per_public_chain,
            sni_rate=0.97,
            server_id=f"pub-srv-{i:05d}",
            labels={"population": "public"},
            tls13_rate=scale.tls13_rate,
            client_pool="general",
        ))
    return specs


# -- non-public-only ----------------------------------------------------------------------


def _private_pki(factory: CertificateFactory, org: str, *,
                 depth: int) -> tuple[IssuingAuthority, list[IssuingAuthority]]:
    root = factory.root(name(f"{org} Root CA", o=org))
    ladder = [root]
    for level in range(depth - 1):
        ladder.append(factory.intermediate(
            ladder[-1], name(f"{org} CA L{level + 1}", o=org), path_len=None))
    return root, ladder


def build_nonpublic_population(pki: PublicPKI, *, seed: int | str,
                               scale: ScaleConfig) -> List[ChainSpec]:
    rng = random.Random(f"nonpub-pop:{seed}")
    factory = CertificateFactory(seed=f"nonpub-pop:{seed}",
                                 epoch=_CERT_EPOCH)
    total = scale.scaled_nonpub_chains()
    singles = round(total * PAPER.nonpub_len1_share_pct / 100)
    multi = total - singles
    specs: List[ChainSpec] = []

    # --- single-certificate chains (78.10 %) --------------------------------
    dga_count = min(scale.dga_chains, max(0, singles - 20))
    distinct_count = max(2, round(singles * (1 - PAPER.nonpub_single_self_signed_pct
                                             / 100)) - dga_count)
    self_signed_count = singles - dga_count - distinct_count
    for i in range(self_signed_count):
        host = f"device{i}.{_random_word(rng, 6)}.lan"
        cert = factory.self_signed(name(host), lifetime_days=rng.choice(
            (365, 730, 3650)))
        specs.append(_nonpub_spec(cert_chain=(cert,), host=host, scale=scale,
                                  sni_rate=1 - PAPER.nonpub_single_no_sni_pct / 100,
                                  labels={"population": "nonpub-single-ss"},
                                  index=i))
    for i in range(distinct_count):
        issuer_dn = name(f"gw-{_random_word(rng, 5)}", o=_random_word(rng, 7))
        subject = f"host{i}.{_random_word(rng, 6)}.lan"
        cert = factory.mismatched_pair_cert(issuer_dn, name(subject))
        specs.append(_nonpub_spec(cert_chain=(cert,), host=subject, scale=scale,
                                  sni_rate=0.2,
                                  labels={"population": "nonpub-single-distinct"},
                                  index=i))
    # DGA cluster (§4.3): distinct issuer/subject, one template, random
    # validity periods between 4 and 365 days.
    for i in range(dga_count):
        issuer = name(f"www.{_random_dga_label(rng)}.com")
        subject = name(f"www.{_random_dga_label(rng)}.com")
        cert = factory.mismatched_pair_cert(
            issuer, subject, lifetime_days=rng.randint(*PAPER.dga_validity_days))
        spec = _nonpub_spec(cert_chain=(cert,),
                            host=subject.common_name, scale=scale,
                            sni_rate=0.0,
                            labels={"population": "nonpub-dga", "dga": True},
                            index=i)
        spec.client_pool = "dga"
        specs.append(spec)

    # --- multi-certificate chains ----------------------------------------------
    # Table 8 shape: ~99.76 % fully matched; small contains/none tails.
    broken_contains = max(1, round(multi * 0.0035))
    broken_none = max(1, round(multi * 0.0025))
    matched = multi - broken_contains - broken_none

    # Two "complex mesh" organisations (Appendix I / Figure 7): a hub CA
    # issuing ≥3 sub-intermediates used across chains.
    mesh_specs = 0
    for mesh_index in range(2):
        org = f"Mesh Org {mesh_index}"
        root, ladder = _private_pki(factory, org, depth=2)
        hub = ladder[-1]
        for sub_index in range(4):
            if mesh_specs >= matched:
                break
            sub = factory.intermediate(
                hub, name(f"{org} Sub CA {sub_index}", o=org), path_len=None)
            host = f"svc{sub_index}.mesh{mesh_index}.corp"
            leaf = factory.leaf(sub, name(host), dns_names=[host],
                                omit_basic_constraints=True,
                                lifetime_days=_LEAF_DAYS)
            chain = (leaf, sub.certificate, hub.certificate, root.certificate)
            specs.append(_nonpub_spec(cert_chain=chain, host=host, scale=scale,
                                      sni_rate=0.6,
                                      labels={"population": "nonpub-mesh",
                                              "mesh": mesh_index},
                                      index=mesh_specs, multi=True))
            mesh_specs += 1

    org_count = 0
    for i in range(matched - mesh_specs):
        org = f"PrivOrg {org_count}"
        org_count += 1
        depth = rng.choice((2, 2, 3))
        root, ladder = _private_pki(factory, org, depth=depth)
        host = f"app{i}.{_random_word(rng, 6)}.corp"
        omit_bc = rng.random() < 0.55  # §4.3's missing basicConstraints
        leaf = factory.leaf(ladder[-1], name(host), dns_names=[host],
                            omit_basic_constraints=omit_bc,
                            lifetime_days=_LEAF_DAYS)
        chain = (leaf, *[ia.certificate for ia in reversed(ladder)])
        specs.append(_nonpub_spec(cert_chain=chain, host=host, scale=scale,
                                  sni_rate=0.55,
                                  labels={"population": "nonpub-multi"},
                                  index=i, multi=True))

    # Broken multi-cert chains: "contains" (a matched pair plus junk) and
    # "none" (all pairs mismatched).
    for i in range(broken_contains):
        org = f"BrokenOrg {i}"
        root, ladder = _private_pki(factory, org, depth=2)
        host = f"broken{i}.{_random_word(rng, 5)}.corp"
        leaf = factory.leaf(ladder[-1], name(host), omit_basic_constraints=True)
        junk = factory.mismatched_pair_cert(name(f"junk-iss-{i}"),
                                            name(f"junk-sub-{i}"))
        chain = (leaf, ladder[-1].certificate, junk)
        specs.append(_nonpub_spec(cert_chain=chain, host=host, scale=scale,
                                  sni_rate=0.4,
                                  labels={"population": "nonpub-multi-contains"},
                                  index=i, multi=True))
    for i in range(broken_none):
        host = f"chaos{i}.{_random_word(rng, 5)}.corp"
        a = factory.mismatched_pair_cert(name(f"x-iss-{i}"), name(host))
        b = factory.mismatched_pair_cert(name(f"y-iss-{i}"),
                                         name(f"y-sub-{i}"))
        specs.append(_nonpub_spec(cert_chain=(a, b), host=host, scale=scale,
                                  sni_rate=0.4,
                                  labels={"population": "nonpub-multi-none"},
                                  index=i, multi=True))

    # The three pathological outliers of §4.1 (observed once, never
    # established).
    for length in PAPER.outlier_lengths:
        cert_pool = [factory.self_signed(name(f"loop{j}.local"))
                     for j in range(min(length, 24))]
        chain = tuple(cert_pool[j % len(cert_pool)] for j in range(length))
        spec = ChainSpec(
            chain=chain,
            hostname=None,
            category_truth="nonpub",
            mix=MIX_PRESETS["reject_all"],
            port_model="nonpub_multi",
            mean_connections=1,
            sni_rate=0.0,
            server_id=f"outlier-{length}",
            labels={"population": "nonpub-outlier", "outlier": True},
            client_pool="nonpub",
        )
        specs.append(spec)
    return specs


def _nonpub_spec(*, cert_chain: Sequence[Certificate], host: str,
                 scale: ScaleConfig, sni_rate: float, labels: dict,
                 index: int, multi: bool = False) -> ChainSpec:
    return ChainSpec(
        chain=tuple(cert_chain),
        hostname=host,
        category_truth="nonpub",
        mix=MIX_PRESETS["nonpub"],
        port_model="nonpub_multi" if multi else "nonpub_single",
        mean_connections=scale.conns_per_nonpub_chain,
        sni_rate=sni_rate,
        server_id=f"nonpub-srv-{labels['population']}-{index:05d}",
        labels=labels,
        tls13_rate=scale.tls13_rate / 3,  # legacy gear negotiates 1.3 rarely
        client_pool="nonpub",
    )


# -- interception -------------------------------------------------------------------------


def build_interception_population(pki: PublicPKI, *, seed: int | str,
                                  scale: ScaleConfig
                                  ) -> tuple[List[ChainSpec],
                                             List[InterceptionMiddlebox]]:
    """One middlebox per Table 1 vendor; chains are substitute chains for
    CT-known public domains, so the §3.2.1 detector can flag them."""
    rng = random.Random(f"intercept-pop:{seed}")
    total_chains = scale.scaled_interception_chains()
    weights = [v.weight for v in INTERCEPTION_FLEET]
    weight_sum = sum(weights)
    middleboxes: List[InterceptionMiddlebox] = []
    specs: List[ChainSpec] = []
    # Budget chains per vendor: proportional to weight, at least 1.
    budgets = [max(1, round(total_chains * w / weight_sum)) for w in weights]

    for vendor, budget in zip(INTERCEPTION_FLEET, budgets):
        factory = CertificateFactory(seed=f"mb:{vendor.vendor}:{seed}",
                                     epoch=_CERT_EPOCH)
        middlebox = InterceptionMiddlebox(
            vendor.vendor, vendor.category, factory,
            chain_depth=vendor.chain_depth,
            single_self_signed=vendor.single_self_signed,
            single_leaf_only=vendor.single_leaf_only)
        middleboxes.append(middlebox)
        hosts = rng.sample(PUBLIC_DOMAINS, k=min(budget, len(PUBLIC_DOMAINS)))
        while len(hosts) < budget:
            hosts.append(f"www.{_random_word(rng, 7)}.com")
        for i, host in enumerate(hosts):
            chain = middlebox.substitute_chain(host)
            # Connection volume follows the vendor's weight so Table 1's
            # per-category connection share emerges from the fleet.
            volume = scale.conns_per_interception_chain * (
                0.5 + 4.0 * vendor.weight / max(weights))
            specs.append(ChainSpec(
                chain=chain,
                hostname=host,
                category_truth="interception",
                mix=MIX_PRESETS["interception"],
                port_model="interception",
                mean_connections=volume,
                sni_rate=0.98,
                server_id=f"mb-{vendor.vendor}-{i:04d}",
                labels={"population": "interception",
                        "vendor": vendor.vendor,
                        "vendor_category": vendor.category},
                extra_anchors=(middlebox.root.certificate,),
                client_pool=f"intercept:{vendor.category}",
            ))

    # Figure 8's complex interception structures: two big vendors get a hub
    # intermediate with ≥3 sub-intermediates across chains.
    for vendor_name in ("Zscaler", "Fortinet"):
        middlebox = next(m for m in middleboxes if m.vendor == vendor_name)
        factory = middlebox.factory
        hub = factory.intermediate(middlebox.root,
                                   name(f"{vendor_name} Regional Hub CA",
                                        o=vendor_name), path_len=None)
        for region in range(3):
            sub = factory.intermediate(
                hub, name(f"{vendor_name} Region {region} CA", o=vendor_name),
                path_len=None)
            host = rng.choice(PUBLIC_DOMAINS)
            leaf = factory.leaf(sub, name(host, o=vendor_name),
                                dns_names=[host], lifetime_days=_LEAF_DAYS)
            chain = (leaf, sub.certificate, hub.certificate,
                     middlebox.root.certificate)
            specs.append(ChainSpec(
                chain=chain,
                hostname=host,
                category_truth="interception",
                mix=MIX_PRESETS["interception"],
                port_model="interception",
                mean_connections=scale.conns_per_interception_chain,
                sni_rate=0.98,
                server_id=f"mb-{vendor_name}-mesh-{region}",
                labels={"population": "interception-mesh",
                        "vendor": vendor_name,
                        "vendor_category": "Security & Network"},
                extra_anchors=(middlebox.root.certificate,),
                client_pool="intercept:Security & Network",
            ))

    # Table 8's broken interception tail: stale appliances presenting a
    # leaf with the wrong (rotated-out) intermediate.
    broken = max(2, round(len(specs) * 0.011))
    for i in range(broken):
        vendor = INTERCEPTION_FLEET[i % 3]  # big security vendors
        middlebox = middleboxes[i % 3]
        factory = middlebox.factory
        host = rng.choice(PUBLIC_DOMAINS)
        leaf = factory.leaf(middlebox.issuing, name(host, o=vendor.vendor),
                            dns_names=[host], lifetime_days=_LEAF_DAYS)
        stale = factory.mismatched_pair_cert(
            name(f"{vendor.vendor} Legacy Root", o=vendor.vendor),
            name(f"{vendor.vendor} Retired CA {i}", o=vendor.vendor))
        chain = (leaf, stale)
        specs.append(ChainSpec(
            chain=chain,
            hostname=host,
            category_truth="interception",
            mix=ClientMix(trusting=0.5, permissive=0.5),
            port_model="interception",
            mean_connections=scale.conns_per_interception_chain / 2,
            sni_rate=0.95,
            server_id=f"mb-stale-{i:03d}",
            labels={"population": "interception-broken",
                    "vendor": vendor.vendor,
                    "vendor_category": vendor.category},
            extra_anchors=(middlebox.root.certificate,),
            client_pool=f"intercept:{vendor.category}",
        ))
    return specs, middleboxes

"""CT monitor/auditor: verifies a log's append-only behaviour over time.

CT's security model depends on monitors that fetch successive signed tree
heads and verify consistency proofs between them (RFC 6962 §5.3).  The
campus study trusts CT's answers; this monitor is the substrate that
justifies that trust — and the tests show it catching a log that rewrites
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import List, Optional

from .log import CTLog
from .merkle import verify_consistency

__all__ = ["TreeHeadObservation", "LogMonitor", "ConsistencyViolation"]


@dataclass(frozen=True, slots=True)
class TreeHeadObservation:
    """One observed (tree_size, root_hash) pair — an STH without the
    signature plumbing."""

    tree_size: int
    root_hash: bytes
    observed_at: datetime


class ConsistencyViolation(Exception):
    """The log's history is inconsistent with a previous observation."""

    def __init__(self, old: TreeHeadObservation, new: TreeHeadObservation):
        self.old = old
        self.new = new
        super().__init__(
            f"log inconsistency: tree of size {new.tree_size} does not "
            f"extend the tree of size {old.tree_size}")


class LogMonitor:
    """Periodically observes one log and audits its append-only promise."""

    def __init__(self, log: CTLog):
        self.log = log
        self.observations: List[TreeHeadObservation] = []

    @property
    def latest(self) -> Optional[TreeHeadObservation]:
        return self.observations[-1] if self.observations else None

    def observe(self, *, at: Optional[datetime] = None) -> TreeHeadObservation:
        """Fetch the current tree head, verify consistency with the last
        observation, and record it.  Raises :class:`ConsistencyViolation`
        when the log rewrote history."""
        observation = TreeHeadObservation(
            tree_size=self.log.size,
            root_hash=self.log.root_hash(),
            observed_at=at or datetime.now(timezone.utc),
        )
        previous = self.latest
        if previous is not None:
            if observation.tree_size < previous.tree_size:
                raise ConsistencyViolation(previous, observation)
            proof = self.log.consistency_proof(previous.tree_size)
            if not verify_consistency(previous.tree_size,
                                      observation.tree_size,
                                      previous.root_hash,
                                      observation.root_hash, proof):
                raise ConsistencyViolation(previous, observation)
        self.observations.append(observation)
        return observation

    def audit_full_history(self) -> bool:
        """Re-verify consistency between every recorded observation pair
        against the log's *current* state (a deep audit)."""
        for old, new in zip(self.observations, self.observations[1:]):
            proof = self.log.consistency_proof(old.tree_size, new.tree_size)
            current_new_root = self.log.root_hash(new.tree_size)
            if current_new_root != new.root_hash:
                return False
            if not verify_consistency(old.tree_size, new.tree_size,
                                      old.root_hash, current_new_root,
                                      proof):
                return False
        return True

"""RFC 6962 Merkle hash tree with inclusion and consistency proofs.

Certificate Transparency logs are append-only Merkle trees.  The campus
study only *queries* CT (does a logged certificate exist for this domain
and validity window?), but a CT log that cannot prove inclusion is just a
dict — so the substrate implements the real structure, and the property
tests verify the RFC 6962 invariants (proof verification, consistency
between tree sizes).

Hashing follows RFC 6962 §2.1: leaf hashes are ``SHA-256(0x00 || leaf)``
and interior nodes are ``SHA-256(0x01 || left || right)``.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

__all__ = [
    "MerkleTree",
    "leaf_hash",
    "node_hash",
    "verify_inclusion",
    "verify_consistency",
]


def leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def _root_of(hashes: Sequence[bytes]) -> bytes:
    """Merkle tree hash of a list of leaf hashes (RFC 6962 §2.1)."""
    n = len(hashes)
    if n == 0:
        return hashlib.sha256(b"").digest()
    if n == 1:
        return hashes[0]
    k = _largest_power_of_two_below(n)
    return node_hash(_root_of(hashes[:k]), _root_of(hashes[k:]))


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class MerkleTree:
    """An append-only Merkle tree over opaque byte-string entries."""

    def __init__(self, entries: Sequence[bytes] = ()):
        self._leaves: List[bytes] = [leaf_hash(e) for e in entries]

    def append(self, entry: bytes) -> int:
        """Append an entry; returns its leaf index."""
        self._leaves.append(leaf_hash(entry))
        return len(self._leaves) - 1

    @property
    def size(self) -> int:
        return len(self._leaves)

    def root(self, tree_size: int | None = None) -> bytes:
        """Root hash at ``tree_size`` (defaults to the current size)."""
        if tree_size is None:
            tree_size = self.size
        if not 0 <= tree_size <= self.size:
            raise ValueError(f"tree_size {tree_size} out of range [0, {self.size}]")
        return _root_of(self._leaves[:tree_size])

    # -- proofs --------------------------------------------------------------

    def inclusion_proof(self, index: int, tree_size: int | None = None) -> list[bytes]:
        """Audit path for leaf ``index`` in the tree of ``tree_size`` (RFC 6962 §2.1.1)."""
        if tree_size is None:
            tree_size = self.size
        if not 0 <= index < tree_size <= self.size:
            raise ValueError(f"index {index} not in tree of size {tree_size}")
        return self._path(index, self._leaves[:tree_size])

    def _path(self, index: int, hashes: Sequence[bytes]) -> list[bytes]:
        n = len(hashes)
        if n <= 1:
            return []
        k = _largest_power_of_two_below(n)
        if index < k:
            return self._path(index, hashes[:k]) + [_root_of(hashes[k:])]
        return self._path(index - k, hashes[k:]) + [_root_of(hashes[:k])]

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> list[bytes]:
        """Proof that the tree at ``old_size`` is a prefix of the tree at
        ``new_size`` (RFC 6962 §2.1.2)."""
        if new_size is None:
            new_size = self.size
        if not 0 <= old_size <= new_size <= self.size:
            raise ValueError(f"invalid sizes {old_size} > {new_size} > {self.size}")
        if old_size == 0 or old_size == new_size:
            return []
        return self._subproof(old_size, self._leaves[:new_size], True)

    def _subproof(self, m: int, hashes: Sequence[bytes], complete: bool) -> list[bytes]:
        n = len(hashes)
        if m == n:
            return [] if complete else [_root_of(hashes)]
        k = _largest_power_of_two_below(n)
        if m <= k:
            return self._subproof(m, hashes[:k], complete) + [_root_of(hashes[k:])]
        return self._subproof(m - k, hashes[k:], False) + [_root_of(hashes[:k])]


def verify_inclusion(leaf: bytes, index: int, tree_size: int,
                     proof: Sequence[bytes], root: bytes) -> bool:
    """Verify an RFC 6962 inclusion proof (§2.1.3 algorithm)."""
    if index >= tree_size:
        return False
    fn, sn = index, tree_size - 1
    computed = leaf_hash(leaf)
    for piece in proof:
        if sn == 0:
            return False
        if fn & 1 or fn == sn:
            computed = node_hash(piece, computed)
            if not fn & 1:
                while True:
                    fn >>= 1
                    sn >>= 1
                    if fn & 1 or fn == 0:
                        break
        else:
            computed = node_hash(computed, piece)
        fn >>= 1
        sn >>= 1
    return sn == 0 and computed == root


def verify_consistency(old_size: int, new_size: int, old_root: bytes,
                       new_root: bytes, proof: Sequence[bytes]) -> bool:
    """Verify an RFC 6962 consistency proof (§2.1.4 algorithm)."""
    if old_size == new_size:
        return old_root == new_root and not proof
    if old_size == 0:
        return not proof
    if not proof:
        return False
    proof_list = list(proof)
    fn, sn = old_size - 1, new_size - 1
    while fn & 1:
        fn >>= 1
        sn >>= 1
    if fn == 0:
        # old tree is a complete subtree: seed with the old root itself.
        fr = sr = old_root
    else:
        fr = sr = proof_list.pop(0)
    for piece in proof_list:
        if sn == 0:
            return False
        if fn & 1 or fn == sn:
            fr = node_hash(piece, fr)
            sr = node_hash(piece, sr)
            if not fn & 1:
                while True:
                    fn >>= 1
                    sn >>= 1
                    if fn & 1 or fn == 0:
                        break
        else:
            sr = node_hash(sr, piece)
        fn >>= 1
        sn >>= 1
    return sn == 0 and fr == old_root and sr == new_root

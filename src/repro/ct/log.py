"""Certificate Transparency log: submission, SCTs, and proofs.

Standards [20, 25] require leaf certificates chained to public trust roots
and used for public-facing domains to be logged; §4.2 confirms the 26
non-public-DB-issued leaves anchored to public roots were all logged.
The simulator enforces the same policy by submitting qualifying leaves
here, and the analyzer's interception detector queries the resulting
index (via :mod:`repro.ct.crtsh`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

from ..x509.certificate import Certificate
from .merkle import MerkleTree, leaf_hash, verify_inclusion

__all__ = ["CTLog", "LogEntry", "SignedCertificateTimestamp"]


@dataclass(frozen=True, slots=True)
class SignedCertificateTimestamp:
    """An SCT: the log's promise to incorporate the certificate."""

    log_id: str
    timestamp: datetime
    leaf_index: int
    signature: str

    def covers(self, certificate: Certificate) -> bool:
        return self.signature == _sct_signature(self.log_id, certificate)


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One accepted submission: the leaf and the chain it was submitted with."""

    index: int
    certificate: Certificate
    chain: tuple[Certificate, ...]
    timestamp: datetime


def _sct_signature(log_id: str, certificate: Certificate) -> str:
    return hashlib.sha256(
        f"{log_id}:{certificate.fingerprint}".encode("ascii")
    ).hexdigest()


def _entry_bytes(certificate: Certificate) -> bytes:
    return certificate.fingerprint.encode("ascii")


class CTLog:
    """An append-only CT log with Merkle-backed inclusion proofs.

    Submission policy mirrors real logs: the chain must name-chain from the
    submitted leaf to one of the log's accepted roots.  (Real logs verify
    signatures; the structured-record simulator name-chains, which is the
    same acceptance set for the synthetic corpus because the simulator only
    mis-signs where it also mis-names.)
    """

    def __init__(self, log_id: str,
                 accepted_roots: Sequence[Certificate] = ()):
        self.log_id = log_id
        self._tree = MerkleTree()
        self._entries: List[LogEntry] = []
        self._by_fingerprint: Dict[str, int] = {}
        self._accepted_root_subjects = {
            tuple(sorted(root.subject.normalized())) for root in accepted_roots
        }

    # -- submission ------------------------------------------------------------

    def add_chain(self, chain: Sequence[Certificate],
                  timestamp: Optional[datetime] = None) -> SignedCertificateTimestamp:
        """Submit a leaf-first chain; returns an SCT or raises ``ValueError``."""
        if not chain:
            raise ValueError("cannot submit an empty chain")
        if not self._chains_to_accepted_root(chain):
            raise ValueError(
                f"chain for {chain[0].short_name()!r} does not terminate at "
                f"an accepted root of log {self.log_id!r}"
            )
        leaf = chain[0]
        existing = self._by_fingerprint.get(leaf.fingerprint)
        if existing is not None:
            entry = self._entries[existing]
            return SignedCertificateTimestamp(
                self.log_id, entry.timestamp, entry.index,
                _sct_signature(self.log_id, leaf),
            )
        when = timestamp or datetime.now(timezone.utc)
        index = self._tree.append(_entry_bytes(leaf))
        entry = LogEntry(index, leaf, tuple(chain), when)
        self._entries.append(entry)
        self._by_fingerprint[leaf.fingerprint] = index
        return SignedCertificateTimestamp(
            self.log_id, when, index, _sct_signature(self.log_id, leaf)
        )

    def _chains_to_accepted_root(self, chain: Sequence[Certificate]) -> bool:
        for current, parent in zip(chain, chain[1:]):
            if not parent.issued(current):
                return False
        last = chain[-1]
        key = tuple(sorted(last.subject.normalized()))
        if key in self._accepted_root_subjects:
            return True
        issuer_key = tuple(sorted(last.issuer.normalized()))
        return issuer_key in self._accepted_root_subjects

    # -- queries ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._tree.size

    def root_hash(self, tree_size: Optional[int] = None) -> bytes:
        return self._tree.root(tree_size)

    def entry(self, index: int) -> LogEntry:
        return self._entries[index]

    def entries(self) -> list[LogEntry]:
        return list(self._entries)

    def contains(self, certificate: Certificate) -> bool:
        return certificate.fingerprint in self._by_fingerprint

    def index_of(self, certificate: Certificate) -> Optional[int]:
        return self._by_fingerprint.get(certificate.fingerprint)

    def prove_inclusion(self, certificate: Certificate) -> list[bytes]:
        index = self._by_fingerprint.get(certificate.fingerprint)
        if index is None:
            raise KeyError(f"{certificate.short_name()!r} is not in log {self.log_id!r}")
        return self._tree.inclusion_proof(index)

    def check_inclusion(self, certificate: Certificate,
                        proof: Sequence[bytes]) -> bool:
        index = self._by_fingerprint.get(certificate.fingerprint)
        if index is None:
            return False
        return verify_inclusion(_entry_bytes(certificate), index,
                                self._tree.size, proof, self._tree.root())

    def consistency_proof(self, old_size: int,
                          new_size: Optional[int] = None) -> list[bytes]:
        return self._tree.consistency_proof(old_size, new_size)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"CTLog({self.log_id!r}, {len(self)} entries)"

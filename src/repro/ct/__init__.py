"""Certificate Transparency substrate: RFC 6962 Merkle trees, CT logs, and
a crt.sh-style domain query index."""

from .crtsh import CrtShIndex, DomainRecord
from .log import CTLog, LogEntry, SignedCertificateTimestamp
from .monitor import ConsistencyViolation, LogMonitor, TreeHeadObservation
from .merkle import (
    MerkleTree,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)

__all__ = [
    "CTLog",
    "ConsistencyViolation",
    "CrtShIndex",
    "DomainRecord",
    "LogEntry",
    "LogMonitor",
    "MerkleTree",
    "SignedCertificateTimestamp",
    "TreeHeadObservation",
    "leaf_hash",
    "node_hash",
    "verify_consistency",
    "verify_inclusion",
]

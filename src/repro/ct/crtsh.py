"""crt.sh-style query index over CT logs.

The paper's interception detector (§3.2.1) asks one question of CT: *which
issuers has CT recorded for this domain, for certificates whose validity
overlaps the observed one?*  A mismatch between the observed issuer and
every CT-recorded issuer flags possible interception.  This module builds
that index over any set of :class:`~repro.ct.log.CTLog` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..obs import instruments
from ..x509.certificate import Certificate, ValidityPeriod
from ..x509.dn import DistinguishedName
from .log import CTLog, LogEntry

__all__ = ["CrtShIndex", "DomainRecord"]


@dataclass(frozen=True, slots=True)
class DomainRecord:
    """One CT-logged certificate relevant to a domain."""

    domain: str
    certificate: Certificate
    log_id: str
    index: int

    @property
    def issuer(self) -> DistinguishedName:
        return self.certificate.issuer

    @property
    def validity(self) -> ValidityPeriod:
        return self.certificate.validity


def _domains_of(certificate: Certificate) -> list[str]:
    """Domains a certificate is valid for: SAN entries plus subject CN."""
    domains: list[str] = []
    san = certificate.extensions.subject_alt_name
    if san is not None:
        domains.extend(n.lower().rstrip(".") for n in san.dns_names)
    cn = certificate.subject.common_name
    if cn and "=" not in cn:
        cn = cn.lower().rstrip(".")
        if cn not in domains:
            domains.append(cn)
    return domains


class CrtShIndex:
    """Domain → logged certificates, refreshed incrementally from the logs."""

    def __init__(self, logs: Sequence[CTLog] = ()):
        self._logs: List[CTLog] = list(logs)
        self._consumed: Dict[str, int] = {}
        self._by_domain: Dict[str, List[DomainRecord]] = {}
        self.refresh()

    def attach(self, log: CTLog) -> None:
        self._logs.append(log)
        self.refresh()

    def refresh(self) -> int:
        """Ingest any entries appended to the logs since the last refresh.

        Returns the number of new records indexed.
        """
        added = 0
        for log in self._logs:
            start = self._consumed.get(log.log_id, 0)
            for entry in log.entries()[start:]:
                added += self._index_entry(log.log_id, entry)
            self._consumed[log.log_id] = log.size
        instruments.CT_INDEXED_RECORDS.inc(added)
        return added

    def _index_entry(self, log_id: str, entry: LogEntry) -> int:
        count = 0
        for domain in _domains_of(entry.certificate):
            record = DomainRecord(domain, entry.certificate, log_id, entry.index)
            self._by_domain.setdefault(domain, []).append(record)
            count += 1
        return count

    # -- queries ---------------------------------------------------------------

    def records_for_domain(self, domain: str) -> list[DomainRecord]:
        """All records whose certificate covers ``domain`` (including via
        wildcard SANs)."""
        domain = domain.lower().rstrip(".")
        records = list(self._by_domain.get(domain, ()))
        head, _, tail = domain.partition(".")
        if head and tail:
            records.extend(self._by_domain.get(f"*.{tail}", ()))
        if records:
            instruments.CT_LOOKUP_HIT.inc()
        else:
            instruments.CT_LOOKUP_MISS.inc()
        return records

    def issuers_for_domain(self, domain: str,
                           overlapping: Optional[ValidityPeriod] = None
                           ) -> list[DistinguishedName]:
        """Distinct issuers CT has recorded for ``domain``; optionally only
        those whose certificate validity overlaps ``overlapping`` — the
        §3.2.1 interception query."""
        seen: set[tuple] = set()
        issuers: list[DistinguishedName] = []
        for record in self.records_for_domain(domain):
            if overlapping is not None and not record.validity.overlaps(overlapping):
                continue
            key = tuple(sorted(record.issuer.normalized()))
            if key not in seen:
                seen.add(key)
                issuers.append(record.issuer)
        return issuers

    def knows_domain(self, domain: str) -> bool:
        return bool(self.records_for_domain(domain))

    def contains_certificate(self, certificate: Certificate) -> bool:
        return any(log.contains(certificate) for log in self._logs)

    def __len__(self) -> int:
        return sum(len(records) for records in self._by_domain.values())

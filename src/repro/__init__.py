"""repro — reproduction of "Inside Certificate Chains Beyond Public Issuers:
Structure and Usage Analysis from a Campus Network" (IMC '25).

Subpackages
-----------
``repro.x509``
    Certificate records, distinguished names, synthetic hierarchy
    generation, crypto-backed PEM chains.
``repro.truststores``
    Root stores (Mozilla/Apple/Microsoft), CCADB, public-DB registry.
``repro.ct``
    RFC 6962 Merkle tree, CT logs, crt.sh-style query index.
``repro.tls``
    Simulated handshakes, client validation policies, interception
    middleboxes.
``repro.zeek``
    SSL/X509 log records, Zeek ASCII format, DPD, monitoring tap.
``repro.campus``
    Synthetic campus population and the 12-month workload generator.
``repro.core``
    The paper's contribution: the certificate chain structure analyzer.
``repro.scan``
    Active scanning and the §5 2024 revisit.
``repro.validation``
    Issuer–subject vs key–signature validation comparison (Appendix D).
``repro.experiments``
    One module per paper table/figure.
``repro.obs``
    Observability: metrics registry, stage tracing, structured logging,
    Prometheus/JSON export.
``repro.parallel``
    Parallel sharded ingestion: shard discovery/splitting, process-pool
    map, deterministic ``ChainUsage.merge`` reduce.
"""

__version__ = "1.0.0"

"""Zeek substrate: SSL/X509 log records, the ASCII log format, dynamic
protocol detection, and the monitoring tap that produces/consumes logs."""

from .dpd import FlowSample, client_hello_bytes, looks_like_tls, sniff_version
from .format import (
    ZeekFormatError,
    ZeekLogReader,
    ZeekLogWriter,
    iter_zeek_log,
    read_zeek_log,
    write_zeek_log,
)
from .legacy import FilesRecord, fuid_for, join_legacy_logs, to_legacy_logs
from .sensor import BorderSensor, RawFlow
from .records import (
    SSLRecord,
    X509Record,
    ssl_record_from_connection,
    x509_record_from_certificate,
)
from .tap import (
    JoinedConnection,
    JoinStats,
    MonitoringTap,
    certificate_map,
    iter_joined,
    join_logs,
    reconstruct_certificate,
)

__all__ = [
    "BorderSensor",
    "FilesRecord",
    "FlowSample",
    "JoinedConnection",
    "JoinStats",
    "MonitoringTap",
    "RawFlow",
    "SSLRecord",
    "X509Record",
    "ZeekFormatError",
    "ZeekLogReader",
    "ZeekLogWriter",
    "certificate_map",
    "client_hello_bytes",
    "fuid_for",
    "iter_joined",
    "iter_zeek_log",
    "join_legacy_logs",
    "join_logs",
    "looks_like_tls",
    "read_zeek_log",
    "reconstruct_certificate",
    "to_legacy_logs",
    "sniff_version",
    "ssl_record_from_connection",
    "write_zeek_log",
    "x509_record_from_certificate",
]

"""Border sensor: DPD-gated log production.

Zeek attaches its TLS analyzer by inspecting payload bytes, not port
numbers [8] — that is how the paper's dataset contains TLS on ports 8013,
8888, and 33854 while ignoring the non-TLS traffic on any port.  The
``BorderSensor`` models that gate: raw flows stream in, only the ones whose
first bytes pass :func:`~repro.zeek.dpd.looks_like_tls` reach the
monitoring tap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..tls.connection import ConnectionRecord
from ..tls.messages import ClientHello
from ..tls.wire import extract_sni, serialize_client_hello
from .dpd import looks_like_tls
from .tap import MonitoringTap

__all__ = ["RawFlow", "BorderSensor", "http_request_bytes",
           "ssh_banner_bytes", "dns_query_bytes"]


@dataclass(frozen=True, slots=True)
class RawFlow:
    """One flow as the wire presents it: first payload bytes plus, when the
    flow really is TLS, the handshake the simulator produced for it."""

    payload: bytes
    connection: Optional[ConnectionRecord] = None

    @classmethod
    def from_connection(cls, connection: ConnectionRecord) -> "RawFlow":
        """Wire bytes carrying the connection's actual ClientHello (with
        its SNI extension), so byte-level parsing agrees with the record."""
        hello = ClientHello(version=connection.version, sni=connection.sni)
        return cls(payload=serialize_client_hello(hello),
                   connection=connection)


def http_request_bytes(host: str = "example.com") -> bytes:
    return f"GET / HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")


def ssh_banner_bytes() -> bytes:
    return b"SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.1\r\n"


def dns_query_bytes() -> bytes:
    # A DNS-over-TCP length-prefixed query header: nothing like TLS.
    return b"\x00\x1d\xab\xcd\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"


@dataclass
class BorderSensor:
    """Streams raw flows through DPD into a monitoring tap."""

    tap: MonitoringTap = field(default_factory=MonitoringTap)
    flows_seen: int = 0
    tls_flows: int = 0
    skipped_flows: int = 0
    #: Flows whose byte-level SNI disagrees with the handshake record —
    #: a self-check that the wire encoding and the simulator agree.
    sni_mismatches: int = 0

    def process(self, flow: RawFlow) -> bool:
        """Returns True when the flow was recognised as TLS and logged."""
        self.flows_seen += 1
        if not looks_like_tls(flow.payload) or flow.connection is None:
            self.skipped_flows += 1
            return False
        wire_sni = extract_sni(flow.payload)
        if wire_sni != flow.connection.sni:
            self.sni_mismatches += 1
        self.tls_flows += 1
        self.tap.observe(flow.connection)
        return True

    def process_all(self, flows: Iterable[RawFlow]) -> int:
        logged = 0
        for flow in flows:
            if self.process(flow):
                logged += 1
        return logged

    @property
    def tls_share(self) -> float:
        if self.flows_seen == 0:
            return 0.0
        return self.tls_flows / self.flows_seen

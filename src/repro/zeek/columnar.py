"""Columnar (struct-of-arrays) Zeek log reader — the ingest hot core.

The compiled reader in :mod:`repro.zeek.format` already resolves the
per-column type dispatch at header time, but it still materialises one
Python dict (and one value object per cell) per row.  At year-scale
corpus sizes those per-row objects dominate the ingest wall clock.  This
module reads a whole log through a third path that produces **parallel
typed columns** instead of rows:

* the file is mmapped, decoded to text once, and scanned once with
  numpy: every ``\\t``/``\\n`` separator position in one vectorised
  pass, data lines grouped into contiguous *runs* between header/blank
  lines;
* each run is structurally validated (exact separator count **and**
  placement per row — any malformed row, stray control byte, or column
  miscount fails validation) and then decoded column-at-a-time:
  numeric columns through a fixed-width byte gather and vectorised
  place-value arithmetic (timestamps are ``digits.dddddd`` fixed-point,
  whose integer-divide decode is bit-identical to Python ``float()``;
  anything that fails the strict format gate falls back to numpy
  ``astype``, which delegates to Python ``int()``/``float()`` per
  element — identical values, identical errors), string columns as
  direct text slices with unset sentinels patched from one vector scan;
* designated columns are *interned*: the column stores small integer
  ids against a per-table first-seen id table (:class:`InternTable`),
  so repeated fingerprints/SNI cells cost one dict hit instead of one
  decoded object per row.

Equivalence is the contract, not a goal: any run that fails structural
validation — and any decode error inside one — rolls the run's partial
columns back and re-parses those exact lines through the same compiled
row codec the default reader uses, reproducing byte-identical rows,
quarantine ``file:line`` records, strict-mode errors, and metric
counts.  Fault injection always takes the per-line path (corruption is
defined line-at-a-time), as does a numpy-less interpreter or a file
with ``\\r`` line endings (the text-mode readers translate those).
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple)

from ..obs import instruments
from ..obs.tracing import trace_span
from .format import ZeekFormatError, _codec_for, _ColumnCountError, _parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.injector import FaultInjector
    from ..resilience.quarantine import Quarantine

try:  # numpy powers the vectorised path; without it every run goes per-line
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = ["ColumnarTable", "ColumnSegment", "InternedColumn", "InternTable",
           "ColumnarStats", "read_zeek_log_columnar"]

#: Numeric cells at most this wide decode through the fixed-width gather;
#: anything wider (absurd for timestamps/ports/counts) goes per-cell.
_GATHER_MAX_WIDTH = 24

_INT_TYPES = ("count", "int", "port")
_FLOAT_TYPES = ("time", "double")


def _kind_of(zeek_type: str) -> str:
    """Decode strategy for one Zeek type.

    ``int``/``float``/``bool`` vectorise; ``container`` is a vector/set
    whose items can fail to parse (so it must always be decoded, even
    when projected away, to surface ``field-parse`` quarantines exactly
    like the row readers); ``container_str`` and ``str`` cannot fail.
    """
    if zeek_type in _INT_TYPES:
        return "int"
    if zeek_type in _FLOAT_TYPES:
        return "float"
    if zeek_type == "bool":
        return "bool"
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1:-1]
        if inner in _INT_TYPES or inner in _FLOAT_TYPES or inner == "bool":
            return "container"
        return "container_str"
    return "str"


def _decode_text(text: str) -> Optional[str]:
    """One scalar string cell, matching ``_parse_scalar`` exactly."""
    if text == "-":
        return None
    if text == "(empty)":
        return ""
    if "\\x" in text:
        return text.replace("\\x09", "\t").replace("\\x0a", "\n")
    return text


def _decode_text_vector(text: str) -> Optional[list]:
    """One string-vector cell — the same algorithm the compiled codec
    uses: three C-level substring scans rule out the slow cases, and the
    overwhelmingly common fingerprint vector is a bare split."""
    if text == "-":
        return None
    if text == "(empty)":
        return []
    if "\\x" in text or "-" in text or "(empty)" in text:
        return [None if t == "-" else
                "" if t == "(empty)" else
                (t.replace("\\x09", "\t").replace("\\x0a", "\n")
                 if "\\x" in t else t)
                for t in text.split(",")]
    return text.split(",")


def _decoder_for(zeek_type: str) -> Callable[[str], object]:
    """Text cell -> parsed value; semantics of :func:`_parse`."""
    kind = _kind_of(zeek_type)
    if kind == "str":
        return _decode_text
    if kind == "container_str":
        return _decode_text_vector

    def decode(text: str) -> object:
        return _parse(text, zeek_type)
    return decode


class InternTable(dict):
    """Text cell -> small int id, with one decoded value per id.

    A plain dict subclass: ``table[cell]`` returns the cell's id,
    assigning the next id (and decoding the cell exactly once) on first
    sight, so id order **is** first-seen cell order.  ``values[id]``
    holds the decoded value.  Lookup/miss tallies feed the
    ``repro_columnar_intern_lookups_total`` metric.
    """

    __slots__ = ("values", "_decode", "lookups", "misses")

    def __init__(self, decode: Callable[[str], object]):
        super().__init__()
        self.values: List[object] = []
        self._decode = decode
        self.lookups = 0
        self.misses = 0

    def __missing__(self, cell: str) -> int:
        self.misses += 1
        index = len(self.values)
        self.values.append(self._decode(cell))
        self[cell] = index
        return index


class _DecodeMemo(dict):
    """Text cell -> decoded value, computed once per distinct cell."""

    __slots__ = ("_decode",)

    def __init__(self, decode: Callable[[str], object]):
        super().__init__()
        self._decode = decode

    def __missing__(self, cell: str) -> object:
        value = self._decode(cell)
        self[cell] = value
        return value


@dataclass(slots=True)
class InternedColumn:
    """A column stored as ids into an :class:`InternTable`."""

    table: InternTable
    ids: List[int] = field(default_factory=list)

    def materialize(self) -> List[object]:
        values = self.table.values
        return [values[i] for i in self.ids]


class _Plan:
    """Per-column decode plan: type kind, storage target, cell memo."""

    __slots__ = ("index", "name", "ztype", "kind", "store", "memo")

    def __init__(self, index: int, name: str, ztype: str, kind: str,
                 store: object):
        self.index = index
        self.name = name
        self.ztype = ztype
        self.kind = kind
        #: ``list`` (plain column), :class:`InternedColumn`, or ``None``
        #: (projected away; ``int``/``float``/``container`` kinds are
        #: still decoded for parse-error parity, the rest are skipped).
        self.store = store
        self.memo = (None if kind in ("int", "float", "bool")
                     else _DecodeMemo(_decoder_for(ztype)))

    @property
    def mark(self) -> int:
        if isinstance(self.store, InternedColumn):
            return len(self.store.ids)
        if isinstance(self.store, list):
            return len(self.store)
        return 0

    def rollback(self, mark: int) -> None:
        if isinstance(self.store, InternedColumn):
            del self.store.ids[mark:]
        elif isinstance(self.store, list):
            del self.store[mark:]


@dataclass(slots=True)
class ColumnSegment:
    """Rows decoded under one ``(#fields, #types)`` header."""

    fields: Tuple[str, ...]
    types: Tuple[str, ...]
    columns: Dict[str, object] = field(default_factory=dict)
    rows: int = 0
    plans: List[_Plan] = field(default_factory=list, repr=False)

    def iter_rows(self) -> Iterator[dict]:
        """Row dicts, identical to the row readers' output.

        Vector/set values may be *shared* between rows that carried the
        same raw cell (decode-once-per-distinct-cell); no reader client
        mutates row values, and equality is unaffected.
        """
        materialized = [
            (name, column.materialize()
             if isinstance(column, InternedColumn) else column)
            for name, column in self.columns.items()]
        for i in range(self.rows):
            yield {name: values[i] for name, values in materialized}


@dataclass(slots=True)
class ColumnarStats:
    """Decode-path tallies, picklable so shard workers can ship them."""

    vector_rows: int = 0
    line_rows: int = 0
    vector_runs: int = 0
    fallback_runs: int = 0
    #: per interned column name: (lookups, misses)
    interns: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def merge(self, other: "ColumnarStats") -> None:
        self.vector_rows += other.vector_rows
        self.line_rows += other.line_rows
        self.vector_runs += other.vector_runs
        self.fallback_runs += other.fallback_runs
        for name, (lookups, misses) in other.interns.items():
            have = self.interns.get(name, (0, 0))
            self.interns[name] = (have[0] + lookups, have[1] + misses)

    def emit(self) -> None:
        """Increment the canonical ``repro_columnar_*`` counters."""
        if self.vector_rows:
            instruments.COLUMNAR_ROWS_VECTORIZED.inc(self.vector_rows)
        if self.line_rows:
            instruments.COLUMNAR_ROWS_LINE.inc(self.line_rows)
        if self.vector_runs:
            instruments.COLUMNAR_RUNS_VECTORIZED.inc(self.vector_runs)
        if self.fallback_runs:
            instruments.COLUMNAR_RUNS_FALLBACK.inc(self.fallback_runs)
        for name, (lookups, misses) in sorted(self.interns.items()):
            if lookups - misses:
                instruments.COLUMNAR_INTERN_LOOKUPS.inc(
                    lookups - misses, table=name, result="hit")
            if misses:
                instruments.COLUMNAR_INTERN_LOOKUPS.inc(
                    misses, table=name, result="miss")


@dataclass(slots=True)
class ColumnarTable:
    """One whole log as typed column segments (usually exactly one)."""

    segments: List[ColumnSegment]
    #: Final ``#path`` header value, the row-metric label.
    path: Optional[str]
    rows: int
    stats: ColumnarStats

    def iter_rows(self) -> Iterator[dict]:
        for segment in self.segments:
            yield from segment.iter_rows()

    def to_rows(self) -> List[dict]:
        return list(self.iter_rows())


class _ColumnarBuilder:
    """Accumulates segments/columns while scanning one log."""

    def __init__(self, source: Optional[str],
                 quarantine: "Optional[Quarantine]",
                 intern: Sequence[str], project: Optional[Sequence[str]]):
        self.source = source
        self.quarantine = quarantine
        self._intern = frozenset(intern)
        self._project = None if project is None else frozenset(project)
        self.segments: List[ColumnSegment] = []
        self.fields: Tuple[str, ...] = ()
        self.types: Tuple[str, ...] = ()
        self.path: Optional[str] = None
        self.rows = 0
        self.stats = ColumnarStats()
        self._segment: Optional[ColumnSegment] = None
        self._row_of: Optional[Callable[[List[str]], dict]] = None
        #: Whole file as text when it is pure ASCII (str offsets equal
        #: byte offsets, so columns slice straight out of one string).
        self._text: Optional[str] = None
        #: True when the file contains no ``(empty)`` and no ``\\x``
        #: escape anywhere: a plain string cell is then its own value,
        #: bar the unset sentinel (detected with one vector scan).
        self._plain_fast = False
        #: True when no control byte below ``\\t`` exists in the file
        #: (set by :meth:`scan_vectorized`); enables the cheap run
        #: validation.
        self._clean_seps = False

    # -- header / error handling (mirrors ZeekLogReader) ----------------------

    def _consume_header(self, line: str) -> None:
        if line.startswith("#path\t"):
            self.path = line.split("\t", 1)[1]
        elif line.startswith("#fields\t"):
            self.fields = tuple(line.split("\t")[1:])
            self._segment = None
            self._row_of = None
        elif line.startswith("#types\t"):
            self.types = tuple(line.split("\t")[1:])
            self._segment = None
            self._row_of = None

    def _bad_row(self, *, line: int, reason: str, detail: str,
                 raw: str) -> None:
        if self.quarantine is None:
            raise ZeekFormatError(detail, source=self.source, line=line)
        self.quarantine.add(source=self.source or self.path or "<stream>",
                            line=line, reason=reason, detail=detail, raw=raw)

    def _ensure_segment(self) -> ColumnSegment:
        segment = self._segment
        if segment is None:
            segment = ColumnSegment(fields=self.fields, types=self.types)
            for j, (name, ztype) in enumerate(zip(self.fields, self.types)):
                kind = _kind_of(ztype)
                stored = self._project is None or name in self._project
                store: object = None
                if stored and name in self._intern:
                    store = InternedColumn(InternTable(_decoder_for(ztype)))
                elif stored:
                    store = []
                if store is not None:
                    segment.columns[name] = store
                segment.plans.append(_Plan(j, name, ztype, kind, store))
            self.segments.append(segment)
            self._segment = segment
        return segment

    def _ensure_codec(self) -> Callable[[List[str]], dict]:
        codec = _codec_for(self.fields, self.types)
        self._row_of = codec
        return codec

    # -- per-line parity path --------------------------------------------------

    def line_slow(self, line: str, lineno: int,
                  faults: "Optional[FaultInjector]" = None) -> None:
        """One line through the exact :meth:`ZeekLogReader._process_line`
        pipeline — headers, fault injection, compiled codec, quarantine —
        appending parsed values into the current segment's columns."""
        if not line:
            return
        if line[0] == "#":
            self._consume_header(line)
            return
        if faults is not None:
            corrupted = faults.corrupt_line(line, lineno)
            if corrupted is not None:
                line = corrupted
        if not self.fields:
            self._bad_row(line=lineno, reason="no-header",
                          detail="data row encountered before "
                                 "#fields header", raw=line)
            return
        row_of = self._row_of or self._ensure_codec()
        parts = line.split("\t")
        try:
            row = row_of(parts)
        except _ColumnCountError as exc:
            self._bad_row(line=lineno, reason="column-count",
                          detail=f"row has {exc.columns} columns, "
                                 f"expected {len(self.fields)}", raw=line)
            return
        except ValueError as exc:
            self._bad_row(line=lineno, reason="field-parse",
                          detail=f"unparseable field value: {exc}", raw=line)
            return
        segment = self._ensure_segment()
        for plan in segment.plans:
            store = plan.store
            if store is None:
                continue
            if isinstance(store, InternedColumn):
                table = store.table
                table.lookups += 1
                store.ids.append(table[parts[plan.index]])
            else:
                store.append(row[plan.name])
        segment.rows += 1
        self.rows += 1
        self.stats.line_rows += 1

    def scan_text(self, text: str,
                  faults: "Optional[FaultInjector]") -> None:
        """Whole-file per-line scan (fault plans, no numpy, ``\\r`` files).

        Replicates text-mode universal newlines (``\\r\\n``/``\\r`` →
        ``\\n``) so line content and line numbers match the row readers.
        """
        if "\r" in text:
            text = text.replace("\r\n", "\n").replace("\r", "\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines, 1):
            self.line_slow(line, lineno, faults)

    # -- vectorised path -------------------------------------------------------

    def scan_vectorized(self, buf) -> None:
        np = _np
        arr = np.frombuffer(buf, dtype=np.uint8)
        n = arr.size
        if n == 0:
            return
        seps = np.flatnonzero(arr < 11)  # \t (9), \n (10), or garbage (<9)
        if n < 2 ** 31:  # int32 offsets halve index-array traffic
            seps = seps.astype(np.int32)
        sep_vals = arr[seps]
        nl = seps[sep_vals == 10]
        # Control bytes below \t would masquerade as separators; when the
        # file has none (the normal case) and every newline is accounted
        # for at a line end, run validation needs no per-run byte gather.
        self._clean_seps = not bool((sep_vals < 9).any())
        terminated = nl.size > 0 and int(nl[-1]) == n - 1
        nlines = nl.size if terminated else nl.size + 1
        starts = np.empty(nlines, dtype=seps.dtype)
        starts[0] = 0
        starts[1:] = nl[:nlines - 1] + 1
        ends = np.empty(nlines, dtype=seps.dtype)
        ends[:nl.size] = nl[:nlines]
        if not terminated:
            ends[-1] = n
        boundary = np.flatnonzero((starts == ends)
                                  | (arr[np.minimum(starts, n - 1)] == 35))
        prev = 0
        for index in boundary.tolist():
            if prev < index:
                self._run(buf, arr, seps, starts, ends, prev, index,
                          nlines, terminated)
            self._line_at(buf, starts, ends, index)
            prev = index + 1
        if prev < nlines:
            self._run(buf, arr, seps, starts, ends, prev, nlines,
                      nlines, terminated)

    def _line_at(self, buf, starts, ends, i: int) -> None:
        a, b = int(starts[i]), int(ends[i])
        if self._text is not None:
            line = self._text[a:b]
        else:
            line = bytes(buf[a:b]).decode("utf-8")
        self.line_slow(line, i + 1)

    def _run_lines(self, buf, starts, ends, a: int, b: int) -> None:
        for i in range(a, b):
            self._line_at(buf, starts, ends, i)

    def _run(self, buf, arr, seps, starts, ends, a: int, b: int,
             nlines: int, terminated: bool) -> None:
        """Decode data lines ``[a, b)`` — vectorised, else per-line."""
        if not self.fields:
            # Rows before any #fields header: each one quarantines.
            self._run_lines(buf, starts, ends, a, b)
            return
        vec_end = b - 1 if (b == nlines and not terminated) else b
        if vec_end > a:
            if self._run_fast(buf, arr, seps, starts, ends, a, vec_end):
                self.stats.vector_runs += 1
            else:
                self.stats.fallback_runs += 1
                self._run_lines(buf, starts, ends, a, vec_end)
        if vec_end < b:  # final line without a trailing newline
            self._run_lines(buf, starts, ends, vec_end, b)

    def _run_fast(self, buf, arr, seps, starts, ends, a: int,
                  b: int) -> bool:
        """Vectorised decode of newline-terminated data lines ``[a, b)``.

        Returns ``False`` (with any partial column appends rolled back)
        when the run is not provably clean: separator count or placement
        off anywhere, or any cell failing its typed conversion.
        """
        np = _np
        ncols = len(self.fields)
        nrows = b - a
        lo = int(np.searchsorted(seps, starts[a], side="left"))
        hi = int(np.searchsorted(seps, ends[b - 1], side="right"))
        run_seps = seps[lo:hi]
        if run_seps.size != nrows * ncols:
            return False
        # Transposed copy: every column's separator positions contiguous,
        # which all the downstream gathers/tolists feed on.
        sepT = np.ascontiguousarray(run_seps.reshape(nrows, ncols).T)
        if self._clean_seps:
            # Every separator in the file is a real \t or \n and every
            # \n sits at a line end, so "the last separator of each row
            # is its line's newline" plus the count match already proves
            # the other ncols-1 per row are tabs.
            if not (sepT[ncols - 1] == ends[a:b]).all():
                return False
        else:
            if ncols > 1 and not (arr[sepT[:ncols - 1]] == 9).all():
                return False
            if not (arr[sepT[ncols - 1]] == 10).all():
                return False
        segment = self._ensure_segment()
        row_starts = starts[a:b]
        marks = [plan.mark for plan in segment.plans]
        try:
            for plan in segment.plans:
                j = plan.index
                cell_starts = row_starts if j == 0 else sepT[j - 1] + 1
                cell_ends = sepT[j]
                self._decode_column(buf, arr, plan, cell_starts, cell_ends,
                                    nrows)
        except (ValueError, OverflowError):
            for plan, mark in zip(segment.plans, marks):
                plan.rollback(mark)
            return False
        segment.rows += nrows
        self.rows += nrows
        self.stats.vector_rows += nrows
        return True

    # -- column decoders -------------------------------------------------------

    def _cells(self, buf, cell_starts, cell_ends) -> List[str]:
        text = self._text
        if text is not None:
            return [text[x:y] for x, y in zip(cell_starts.tolist(),
                                              cell_ends.tolist())]
        # Non-ASCII file: slice bytes, decode per cell.  A bad byte
        # raises UnicodeDecodeError (a ValueError), sending the run to
        # the per-line path, which re-raises it uncaught — matching the
        # legacy readers' text-mode crash.
        return [buf[x:y].decode("utf-8")
                for x, y in zip(cell_starts.tolist(), cell_ends.tolist())]

    def _decode_column(self, buf, arr, plan: _Plan, cell_starts, cell_ends,
                       nrows: int) -> None:
        kind = plan.kind
        store = plan.store
        if kind == "bool":
            if store is not None:  # bool conversion can never fail
                self._decode_bool(arr, store, cell_starts, cell_ends)
            return
        if kind in ("int", "float"):
            self._decode_numeric(buf, arr, plan, cell_starts, cell_ends,
                                 nrows)
            return
        if store is None and kind != "container":
            return  # infallible and not materialised: nothing to do
        if isinstance(store, InternedColumn):
            # Slice and look up in one comprehension: the id table hit
            # is the whole per-row cost for a repeated cell.
            table = store.table
            table.lookups += nrows
            getid = table.__getitem__
            text = self._text
            if text is not None:
                ids = [getid(text[x:y])
                       for x, y in zip(cell_starts.tolist(),
                                       cell_ends.tolist())]
            else:
                ids = [getid(buf[x:y].decode("utf-8"))
                       for x, y in zip(cell_starts.tolist(),
                                       cell_ends.tolist())]
            if store.ids:
                store.ids.extend(ids)
            else:  # first run: adopt the list instead of copying it
                store.ids = ids
            return
        cells = self._cells(buf, cell_starts, cell_ends)
        if kind == "str" and self._plain_fast:
            # No escapes, no "(empty)" anywhere in the file: a cell is
            # its own value except the bare unset sentinel.
            store.extend(cells)
            if bool((cell_ends - cell_starts == 1).any()):
                unset = _np.flatnonzero((cell_ends - cell_starts == 1)
                                        & (arr[cell_starts] == 45))
                base = len(store) - nrows
                for i in unset.tolist():
                    store[base + i] = None
        else:
            values = map(plan.memo.__getitem__, cells)
            if store is None:  # failable container, projected away
                for _ in values:
                    pass
            else:
                store.extend(values)

    def _decode_bool(self, arr, store: list, cell_starts, cell_ends) -> None:
        # Legacy semantics: None if cell == "-" else cell == "T".  A
        # width-1 check plus one byte gather decides both exactly.
        np = _np
        single = cell_ends - cell_starts == 1
        first = arr[cell_starts]
        out = (single & (first == 84)).tolist()
        unset = np.flatnonzero(single & (first == 45))
        for i in unset.tolist():
            out[i] = None
        store.extend(out)

    def _decode_numeric(self, buf, arr, plan: _Plan, cell_starts, cell_ends,
                        nrows: int) -> None:
        np = _np
        store = plan.store
        widths = cell_ends - cell_starts
        maxw = int(widths.max()) if nrows else 0
        if maxw == 0:
            # every cell empty — int("")/float("") parity
            raise ValueError("empty numeric cell")
        if maxw > _GATHER_MAX_WIDTH:
            self._decode_numeric_slices(buf, plan, cell_starts, cell_ends)
            return
        span = np.arange(maxw, dtype=cell_starts.dtype)
        if int(widths.min()) == maxw:
            # Constant width (the usual case for timestamps): the gather
            # needs no alignment mask at all.
            gathered = arr[cell_starts[:, None] + span]
            mask = None
        else:
            # Right-aligned gather: the place value of position ``j`` is
            # then the *same for every row*, so the digit fold is one
            # matrix-vector product against a constant power table.
            idx = cell_ends[:, None] - maxw + span
            if int(cell_ends[0]) < maxw:  # only near the file start
                idx = np.maximum(idx, 0)
            gathered = arr[idx]
            mask = span >= (maxw - widths[:, None])
        # uint8 wrap-around: bytes below '0' land above 9, so a single
        # compare classifies digits and the result doubles as the digit
        # value for the fold below.
        d = gathered - 48
        digit = d <= 9
        dotcol = maxw - 7
        unset = None  # computed only when the clean screen fails
        if plan.kind == "int":
            if mask is None:
                clean = bool(digit.all())
            else:
                clean = (bool((digit | ~mask).all())
                         and bool((widths > 0).all()))
            if not clean:
                # Per-cell re-check, allowing the unset sentinel.
                unset = (widths == 1) & (arr[cell_starts] == 45)
                if mask is None:
                    ok = digit.all(axis=1)
                else:
                    ok = (digit | ~mask).all(axis=1) & (widths > 0)
                clean = bool((ok | unset).all())
            if maxw <= 18 and clean:
                # every non-unset cell is plain digits: place-value
                # arithmetic gives int() bit for bit, fully vectorised.
                # (uint8 wrap-around on the rare masked/unset garbage
                # byte is multiplied away or patched to None.)
                if store is None:
                    return  # validate-only column, and every cell parses
                digits = d if mask is None else d * mask
                if maxw <= 15:
                    # N < 10**15 < 2**53: every product and partial sum
                    # is an exact float64, and the BLAS matvec is much
                    # faster than the int64 one.
                    p10f = 10.0 ** (maxw - 1 - span)
                    values = (digits @ p10f).astype(_np.int64).tolist()
                else:
                    # int64 powers explicitly: span may be int32 and
                    # 10**15..10**17 do not fit its arithmetic.
                    p10 = 10 ** np.arange(maxw - 1, -1, -1, dtype=np.int64)
                    values = (digits @ p10).tolist()
                self._store_numeric(store, values, unset)
                return
        else:
            # the writer renders time as "%.6f": digits, one dot, six
            # fractional digits.  Right-aligned, the dot sits in the
            # same column for every row; N/1e6 (N the digit string as an
            # integer, exact below 2**53) is then the correctly rounded
            # value — bit-identical to Python float(text).
            if 8 <= maxw <= 17:
                if mask is None:
                    clean = (bool((digit | (span == dotcol)).all())
                             and bool((gathered[:, dotcol] == 46).all()))
                else:
                    clean = (bool((digit | ~mask | (span == dotcol)).all())
                             and bool((gathered[:, dotcol] == 46).all())
                             and bool((widths >= 8).all()))
                if not clean:
                    unset = (widths == 1) & (arr[cell_starts] == 45)
                    if mask is None:
                        ok = ((digit | (span == dotcol)).all(axis=1)
                              & (gathered[:, dotcol] == 46))
                    else:
                        ok = ((digit | ~mask | (span == dotcol)).all(axis=1)
                              & (gathered[:, dotcol] == 46)
                              & (widths >= 8))
                    clean = bool((ok | unset).all())
                if clean:
                    if store is None:
                        return
                    # Fold the digit string in float64 (BLAS matvec):
                    # each term d*10^k is an exact float64 and partial
                    # sums only grow, so whenever the final fold lands
                    # below 2**53 every step was exact and N/1e6 is the
                    # correctly rounded value.  Above 2**53 the fold may
                    # have rounded — those cells take the astype path.
                    p10 = np.where(span < dotcol,
                                   10.0 ** np.maximum(maxw - 2 - span, 0),
                                   10.0 ** (maxw - 1 - span))
                    p10[dotcol] = 0.0
                    digits = d if mask is None else d * mask
                    n_num = digits @ p10
                    checked = n_num if unset is None or not bool(unset.any()) \
                        else n_num[~unset]
                    if bool((checked < 2 ** 53).all()):
                        self._store_numeric(store, (n_num / 1e6).tolist(),
                                            unset)
                        return
        # Fallback: numpy astype delegates to Python int()/float() per
        # element — identical values (including underscores and signs)
        # and identical ValueError/OverflowError on anything else.
        if mask is None:
            cells = np.ascontiguousarray(gathered).view(f"S{maxw}").ravel()
        else:
            left = arr[np.where(span < widths[:, None],
                                cell_starts[:, None] + span, 0)]
            left[~(span < widths[:, None])] = 0
            cells = left.view(f"S{maxw}").ravel()
        unset_b = cells == b"-"
        work = cells
        if bool(unset_b.any()):
            work = cells.copy()
            work[unset_b] = b"0"
        typed = work.astype(np.int64 if plan.kind == "int" else np.float64)
        if store is None:
            return  # validate-only column
        self._store_numeric(store, typed.tolist(), unset_b)

    @staticmethod
    def _store_numeric(store: list, values: list, unset) -> None:
        if unset is not None and bool(unset.any()):
            for i in _np.flatnonzero(unset).tolist():
                values[i] = None
        store.extend(values)

    def _decode_numeric_slices(self, buf, plan: _Plan, cell_starts,
                               cell_ends) -> None:
        """Unusually wide numeric cells: per-cell Python conversion."""
        convert = int if plan.kind == "int" else float
        out = []
        for cell in self._cells(buf, cell_starts, cell_ends):
            out.append(None if cell == "-" else convert(cell))
        if plan.store is not None:
            plan.store.extend(out)

    # -- completion ------------------------------------------------------------

    def finish(self) -> ColumnarTable:
        for segment in self.segments:
            for plan in segment.plans:
                if isinstance(plan.store, InternedColumn):
                    table = plan.store.table
                    lookups, misses = self.stats.interns.get(
                        plan.name, (0, 0))
                    self.stats.interns[plan.name] = (
                        lookups + table.lookups, misses + table.misses)
        segments = [s for s in self.segments if s.rows]
        table = ColumnarTable(segments=segments, path=self.path,
                              rows=self.rows, stats=self.stats)
        if self.rows:
            instruments.ZEEK_ROWS.inc(self.rows, direction="read",
                                      path=self.path or "unknown")
        self.stats.emit()
        return table


def read_zeek_log_columnar(path_on_disk: str, *,
                           quarantine: "Optional[Quarantine]" = None,
                           faults: "Optional[FaultInjector]" = None,
                           intern: Sequence[str] = (),
                           project: Optional[Sequence[str]] = None
                           ) -> ColumnarTable:
    """Read a whole log into typed columns; see the module docstring.

    ``intern`` names columns stored as id lists against per-table
    :class:`InternTable`\\ s; ``project`` (when given) limits which
    columns are materialised — columns whose conversion can fail are
    still decoded so parse errors quarantine exactly as the row readers
    would, while infallible string/bool columns are skipped outright.
    Strict/tolerant and fault-injection semantics match
    :func:`repro.zeek.format.iter_zeek_log` record for record.
    """
    builder = _ColumnarBuilder(path_on_disk, quarantine, intern, project)
    with trace_span("columnar_read"):
        size = os.path.getsize(path_on_disk)
        if size == 0:
            return builder.finish()
        with open(path_on_disk, "rb") as handle:
            buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            view = memoryview(buf)
            try:
                text: Optional[str] = str(view, "utf-8")
            except UnicodeDecodeError:
                # Invalid UTF-8 somewhere: scan byte-wise and crash at
                # the first bad *cell*, like the text-mode readers.
                text = None
            finally:
                view.release()
            if text is not None and len(text) == size:  # pure ASCII
                builder._text = text
                builder._plain_fast = ("\\x" not in text
                                       and "(empty)" not in text)
            if faults is not None or _np is None or (
                    text is not None and "\r" in text):
                if text is None:
                    text = bytes(buf).decode("utf-8")  # raises like legacy
                builder.scan_text(text, faults)
            else:
                builder.scan_vectorized(buf)
            return builder.finish()
        finally:
            try:
                buf.close()
            except BufferError:  # a live numpy view pins the mapping
                pass

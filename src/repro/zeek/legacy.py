"""Legacy Zeek compatibility: the ssl → files → x509 three-way join.

Zeek 3.x (the version deployed during the paper's 2020–2021 collection
window) did not put certificate hashes in ``ssl.log``.  Instead:

* ``ssl.log`` carried ``cert_chain_fuids`` — per-transfer file IDs;
* ``files.log`` mapped each fuid to the certificate's SHA-256;
* ``x509.log`` was keyed by fuid (one row per observed transfer).

This module converts the modern tap output into that legacy layout and
joins legacy logs back into analyzer input, so the pipeline consumes
either generation of Zeek output.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from .records import SSLRecord, X509Record
from .tap import JoinedConnection, join_logs

__all__ = [
    "FilesRecord",
    "fuid_for",
    "to_legacy_logs",
    "join_legacy_logs",
]


@dataclass(frozen=True, slots=True)
class FilesRecord:
    """A ``files.log`` row (certificate-transfer fields only)."""

    ts: float
    fuid: str
    tx_hosts: Tuple[str, ...]
    rx_hosts: Tuple[str, ...]
    source: str
    mime_type: str
    sha256: str

    FIELDS = ("ts", "fuid", "tx_hosts", "rx_hosts", "source", "mime_type",
              "sha256")
    TYPES = ("time", "string", "set[addr]", "set[addr]", "string", "string",
             "string")

    def to_row(self) -> list[object]:
        return [self.ts, self.fuid, list(self.tx_hosts), list(self.rx_hosts),
                self.source, self.mime_type, self.sha256]

    @classmethod
    def from_row(cls, row: dict) -> "FilesRecord":
        return cls(
            ts=row["ts"],
            fuid=row["fuid"],
            tx_hosts=tuple(row["tx_hosts"] or ()),
            rx_hosts=tuple(row["rx_hosts"] or ()),
            source=row["source"],
            mime_type=row["mime_type"],
            sha256=row["sha256"],
        )


def fuid_for(uid: str, fingerprint: str, position: int) -> str:
    """Deterministic Zeek-style file ID for one certificate transfer."""
    digest = hashlib.sha256(
        f"{uid}|{fingerprint}|{position}".encode("ascii")).hexdigest()
    return "F" + digest[:17]


def to_legacy_logs(ssl_records: Sequence[SSLRecord],
                   x509_records: Sequence[X509Record]
                   ) -> Tuple[List[SSLRecord], List[FilesRecord],
                              List[X509Record]]:
    """Convert modern (fingerprint-keyed) logs into the legacy triple.

    The returned ssl rows carry fuids in ``cert_chain_fps`` (legacy field
    name ``cert_chain_fuids``); files rows map fuids to hashes; x509 rows
    are re-keyed by fuid, duplicated per transfer as Zeek 3.x did.
    """
    by_fingerprint = {record.fingerprint: record for record in x509_records}
    legacy_ssl: List[SSLRecord] = []
    files: List[FilesRecord] = []
    legacy_x509: List[X509Record] = []
    for ssl in ssl_records:
        fuids: List[str] = []
        for position, fingerprint in enumerate(ssl.cert_chain_fps):
            certificate = by_fingerprint.get(fingerprint)
            if certificate is None:
                continue
            fuid = fuid_for(ssl.uid, fingerprint, position)
            fuids.append(fuid)
            mime = ("application/x-x509-user-cert" if position == 0
                    else "application/x-x509-ca-cert")
            files.append(FilesRecord(
                ts=ssl.ts,
                fuid=fuid,
                tx_hosts=(ssl.id_resp_h,),
                rx_hosts=(ssl.id_orig_h,),
                source="SSL",
                mime_type=mime,
                sha256=fingerprint,
            ))
            legacy_x509.append(replace(certificate, ts=ssl.ts,
                                       fingerprint=fuid))
        legacy_ssl.append(replace(ssl, cert_chain_fps=tuple(fuids)))
    return legacy_ssl, files, legacy_x509


def join_legacy_logs(ssl_records: Sequence[SSLRecord],
                     files_records: Sequence[FilesRecord],
                     x509_records: Sequence[X509Record],
                     *, strict: bool = False) -> List[JoinedConnection]:
    """Join a legacy log triple into analyzer input.

    Resolution order per chain entry: fuid → files.log → sha256 → the
    canonical certificate record.  The x509 rows themselves are fuid-keyed
    duplicates; the files.log hash restores the stable identity the
    analysis needs for chain de-duplication.
    """
    sha_by_fuid: Dict[str, str] = {f.fuid: f.sha256 for f in files_records}
    record_by_fuid: Dict[str, X509Record] = {
        record.fingerprint: record for record in x509_records}
    canonical: Dict[str, X509Record] = {}
    for record in x509_records:
        sha = sha_by_fuid.get(record.fingerprint)
        if sha is not None and sha not in canonical:
            canonical[sha] = replace(record, fingerprint=sha)

    modern_ssl: List[SSLRecord] = []
    for ssl in ssl_records:
        hashes: List[str] = []
        for fuid in ssl.cert_chain_fps:
            sha = sha_by_fuid.get(fuid)
            if sha is None:
                if fuid in record_by_fuid:
                    # files.log row lost (rotation race): fall back to the
                    # fuid-keyed x509 row itself.
                    sha = fuid
                    canonical.setdefault(fuid, record_by_fuid[fuid])
                elif strict:
                    raise KeyError(f"fuid {fuid} resolves to no certificate")
                else:
                    continue
            hashes.append(sha)
        modern_ssl.append(replace(ssl, cert_chain_fps=tuple(hashes)))
    return join_logs(modern_ssl, list(canonical.values()), strict=strict)

"""Monitoring tap: turns simulated handshake outcomes into Zeek logs, and
reconstructs analyzer input from those logs.

``MonitoringTap`` is the border-gateway sensor: it observes
:class:`~repro.tls.connection.ConnectionRecord` streams and maintains the
two log streams the paper worked from.  ``reconstruct_certificate`` /
``join_logs`` is the inverse direction: given SSL and X509 rows (ours or
real Zeek's), rebuild the per-connection chain view the analyzer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..obs import instruments
from ..obs.cache import BoundedLRU
from ..obs.logging import get_logger, kv
from ..obs.tracing import trace_span
from ..tls.connection import ConnectionRecord
from ..x509.certificate import Certificate, KeyAlgorithm, ValidityPeriod
from ..x509.dn import DistinguishedName
from ..x509.extensions import BasicConstraints, ExtensionSet, SubjectAltName
from .records import (
    SSLRecord,
    X509Record,
    ssl_record_from_connection,
    x509_record_from_certificate,
)

__all__ = ["MonitoringTap", "reconstruct_certificate", "certificate_map",
           "join_logs", "iter_joined", "JoinedConnection", "JoinStats"]

log = get_logger(__name__)


class MonitoringTap:
    """Accumulates SSL rows and de-duplicated X509 rows like a Zeek worker."""

    def __init__(self) -> None:
        self.ssl_records: List[SSLRecord] = []
        self._x509_by_fingerprint: Dict[str, X509Record] = {}

    def observe(self, connection: ConnectionRecord) -> SSLRecord:
        record = ssl_record_from_connection(connection)
        self.ssl_records.append(record)
        for certificate in connection.chain:
            if certificate.fingerprint not in self._x509_by_fingerprint:
                self._x509_by_fingerprint[certificate.fingerprint] = (
                    x509_record_from_certificate(certificate, connection.timestamp)
                )
        return record

    def observe_all(self, connections: Iterable[ConnectionRecord]) -> int:
        count = 0
        for connection in connections:
            self.observe(connection)
            count += 1
        return count

    @property
    def x509_records(self) -> list[X509Record]:
        return list(self._x509_by_fingerprint.values())

    def ssl_rows(self) -> list[list[object]]:
        return [record.to_row() for record in self.ssl_records]

    def x509_rows(self) -> list[list[object]]:
        return [record.to_row() for record in self.x509_records]


#: Reconstruction memo.  An X509 log de-duplicates by fingerprint, but
#: sharded ingest re-reads the same certificate rows in every shard (and
#: repeated analyzer runs re-read the same logs); :class:`X509Record` is a
#: frozen hashable dataclass, so the full record is its own cache key —
#: two rows that differ in any field can never alias one entry.
_RECONSTRUCT_CACHE: "BoundedLRU[X509Record, Certificate]" = BoundedLRU(
    131072,
    hits=instruments.CERT_CACHE_HIT,
    misses=instruments.CERT_CACHE_MISS)


def reconstruct_certificate(record: X509Record) -> Certificate:
    """Rebuild a :class:`Certificate` from an X509 log row (memoized).

    The result carries no generator ground truth (no signing key id, no true
    role) — by construction the analyzer operates with exactly the paper's
    information set.  Certificates are immutable, so repeated rows share
    one reconstructed object.
    """
    cached = _RECONSTRUCT_CACHE.get(record)
    if cached is not None:
        return cached
    certificate = _reconstruct_uncached(record)
    _RECONSTRUCT_CACHE.put(record, certificate)
    return certificate


def _reconstruct_uncached(record: X509Record) -> Certificate:
    bc: Optional[BasicConstraints] = None
    if record.basic_constraints_ca is not None:
        bc = BasicConstraints(ca=record.basic_constraints_ca,
                              path_len=record.basic_constraints_path_len)
    san: Optional[SubjectAltName] = None
    if record.san_dns:
        san = SubjectAltName(tuple(record.san_dns))
    return Certificate(
        subject=DistinguishedName.parse(record.certificate_subject),
        issuer=DistinguishedName.parse(record.certificate_issuer),
        serial=record.certificate_serial,
        validity=ValidityPeriod(
            datetime.fromtimestamp(record.certificate_not_valid_before, timezone.utc),
            datetime.fromtimestamp(record.certificate_not_valid_after, timezone.utc),
        ),
        key_algorithm=_key_algorithm(record.certificate_key_alg),
        key_bits=record.certificate_key_length,
        signature_algorithm=record.certificate_sig_alg,
        extensions=ExtensionSet(basic_constraints=bc, subject_alt_name=san),
        version=record.certificate_version,
        fingerprint_override=record.fingerprint,
    )


def _key_algorithm(text: str) -> KeyAlgorithm:
    try:
        return KeyAlgorithm(text)
    except ValueError:
        return KeyAlgorithm.UNKNOWN


@dataclass(frozen=True, slots=True)
class JoinedConnection:
    """One SSL row joined with its certificate chain — analyzer input."""

    ssl: SSLRecord
    chain: tuple[Certificate, ...]

    @property
    def chain_key(self) -> tuple[str, ...]:
        return tuple(cert.fingerprint for cert in self.chain)


@dataclass(slots=True)
class JoinStats:
    """Mutable tallies filled in by :func:`iter_joined` as it streams."""

    joined: int = 0
    missing_certs: int = 0


def certificate_map(x509_records: Iterable[X509Record]) -> Dict[str, Certificate]:
    """Reconstruct every X509 row into a fingerprint-keyed certificate map."""
    return {record.fingerprint: reconstruct_certificate(record)
            for record in x509_records}


def iter_joined(ssl_records: Iterable[SSLRecord],
                certificates: Mapping[str, Certificate],
                *, strict: bool = False,
                stats: Optional[JoinStats] = None
                ) -> Iterator[JoinedConnection]:
    """Stream SSL rows joined against an already-built certificate map.

    The generator core of :func:`join_logs`: it holds only the
    certificate map in memory, so shard workers can pipe a streaming
    SSL reader straight into chain aggregation.  Metrics and logging are
    the *caller's* job (``join_logs`` for the serial path, the parallel
    driver after merging) — pass a :class:`JoinStats` to collect the
    tallies those callers report.
    """
    if stats is None:
        stats = JoinStats()
    get_certificate = certificates.get
    for ssl in ssl_records:
        chain: list[Certificate] = []
        for fingerprint in ssl.cert_chain_fps:
            certificate = get_certificate(fingerprint)
            if certificate is None:
                if strict:
                    raise KeyError(
                        f"SSL row {ssl.uid} references unknown "
                        f"certificate {fingerprint}")
                stats.missing_certs += 1
                continue
            chain.append(certificate)
        stats.joined += 1
        yield JoinedConnection(ssl, tuple(chain))


def join_logs(ssl_records: Sequence[SSLRecord],
              x509_records: Sequence[X509Record],
              *, strict: bool = False) -> list[JoinedConnection]:
    """Join SSL rows to their certificates via chain fingerprints.

    With ``strict=False`` (the default), connections referencing
    fingerprints missing from the X509 log are joined with the certificates
    that *are* present dropped out — matching how real pipelines tolerate
    log rotation races.  ``strict=True`` raises instead.
    """
    stats = JoinStats()
    with trace_span("join_logs", ssl_rows=len(ssl_records),
                    x509_rows=len(x509_records)):
        certificates = certificate_map(x509_records)
        joined = list(iter_joined(ssl_records, certificates,
                                  strict=strict, stats=stats))
    instruments.ZEEK_JOIN_CONNECTIONS.inc(stats.joined)
    instruments.ZEEK_JOIN_MISSING_CERTS.inc(stats.missing_certs)
    if stats.missing_certs:
        log.warning("join dropped unknown certificate references",
                    extra=kv(missing=stats.missing_certs, joined=stats.joined))
    return joined

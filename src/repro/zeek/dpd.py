"""Dynamic protocol detection (DPD), Zeek-style, reduced to the TLS case.

Zeek does not trust port numbers: it inspects the first payload bytes of a
flow and attaches the TLS analyzer when they look like a TLS handshake [8].
That is how the paper's dataset captures TLS on ports like 8013, 33854, and
8888 (Table 4).  This module reproduces the byte-level heuristic so the
campus workload can carry TLS on arbitrary ports and non-TLS traffic that
must be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tls.messages import TLSVersion

__all__ = ["looks_like_tls", "sniff_version", "client_hello_bytes", "FlowSample"]

_CONTENT_TYPE_HANDSHAKE = 0x16
_HANDSHAKE_CLIENT_HELLO = 0x01

_VERSION_BYTES = {
    TLSVersion.TLS10: (3, 1),
    TLSVersion.TLS11: (3, 2),
    TLSVersion.TLS12: (3, 3),
    # TLS 1.3 ClientHellos advertise 3,3 in the record layer for middlebox
    # compatibility; the distinction rides in extensions we don't model.
    TLSVersion.TLS13: (3, 3),
}


@dataclass(frozen=True, slots=True)
class FlowSample:
    """First payload bytes of a flow in each direction."""

    orig_bytes: bytes
    resp_bytes: bytes = b""


def client_hello_bytes(version: TLSVersion = TLSVersion.TLS12,
                       body_length: int = 200) -> bytes:
    """Synthesize the first bytes of a plausible ClientHello record."""
    major, minor = _VERSION_BYTES[version]
    record_length = body_length + 4
    header = bytes([
        _CONTENT_TYPE_HANDSHAKE, major, minor,
        (record_length >> 8) & 0xFF, record_length & 0xFF,
        _HANDSHAKE_CLIENT_HELLO,
        0, (body_length >> 8) & 0xFF, body_length & 0xFF,
    ])
    return header + bytes(body_length)


def looks_like_tls(payload: bytes) -> bool:
    """Zeek's DPD signature, essentially: a handshake record with a sane
    version and a ClientHello/ServerHello handshake type."""
    if len(payload) < 6:
        return False
    if payload[0] != _CONTENT_TYPE_HANDSHAKE:
        return False
    if payload[1] != 3 or payload[2] > 4:
        return False
    record_length = (payload[3] << 8) | payload[4]
    if record_length == 0 or record_length > 2 ** 14 + 256:
        return False
    return payload[5] in (0x01, 0x02)


def sniff_version(payload: bytes) -> Optional[TLSVersion]:
    """Best-effort record-layer version from the first bytes (None if not TLS)."""
    if not looks_like_tls(payload):
        return None
    minor = payload[2]
    return {
        1: TLSVersion.TLS10,
        2: TLSVersion.TLS11,
        3: TLSVersion.TLS12,
        4: TLSVersion.TLS13,
    }.get(minor)

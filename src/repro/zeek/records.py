"""Zeek ``ssl.log`` and ``x509.log`` record types.

Field names and types follow Zeek's ``SSL::Info`` and ``X509::Info``
records, restricted to the authorized fields the paper's pipeline used
(§3.1): connection 4-tuple, version, SNI, established flag, certificate
chain fingerprints, and per-certificate structured attributes.  Raw
certificates are deliberately not representable here, matching the IRB
constraint that shaped the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from ..tls.connection import ConnectionRecord
from ..x509.certificate import Certificate

__all__ = ["SSLRecord", "X509Record", "ssl_record_from_connection",
           "x509_record_from_certificate"]


@dataclass(frozen=True, slots=True)
class SSLRecord:
    """One ``ssl.log`` row."""

    ts: float
    uid: str
    id_orig_h: str
    id_orig_p: int
    id_resp_h: str
    id_resp_p: int
    version: str
    server_name: Optional[str]
    established: bool
    cert_chain_fps: tuple[str, ...]
    resumed: bool = False
    validation_status: str = ""

    FIELDS = (
        "ts", "uid", "id.orig_h", "id.orig_p", "id.resp_h", "id.resp_p",
        "version", "server_name", "resumed", "established",
        "cert_chain_fps", "validation_status",
    )
    TYPES = (
        "time", "string", "addr", "port", "addr", "port",
        "string", "string", "bool", "bool",
        "vector[string]", "string",
    )

    def to_row(self) -> list[object]:
        return [
            self.ts, self.uid, self.id_orig_h, self.id_orig_p,
            self.id_resp_h, self.id_resp_p, self.version, self.server_name,
            self.resumed, self.established, list(self.cert_chain_fps),
            self.validation_status,
        ]

    @classmethod
    def from_row(cls, row: dict) -> "SSLRecord":
        return cls(
            ts=row["ts"],
            uid=row["uid"],
            id_orig_h=row["id.orig_h"],
            id_orig_p=row["id.orig_p"],
            id_resp_h=row["id.resp_h"],
            id_resp_p=row["id.resp_p"],
            version=row["version"] or "",
            server_name=row["server_name"],
            resumed=bool(row["resumed"]),
            established=bool(row["established"]),
            cert_chain_fps=tuple(row["cert_chain_fps"] or ()),
            validation_status=row["validation_status"] or "",
        )


@dataclass(frozen=True, slots=True)
class X509Record:
    """One ``x509.log`` row (keyed by certificate fingerprint)."""

    ts: float
    fingerprint: str
    certificate_version: int
    certificate_serial: str
    certificate_subject: str
    certificate_issuer: str
    certificate_not_valid_before: float
    certificate_not_valid_after: float
    certificate_key_alg: str
    certificate_sig_alg: str
    certificate_key_length: int
    san_dns: tuple[str, ...] = ()
    basic_constraints_ca: Optional[bool] = None
    basic_constraints_path_len: Optional[int] = None

    FIELDS = (
        "ts", "fingerprint", "certificate.version", "certificate.serial",
        "certificate.subject", "certificate.issuer",
        "certificate.not_valid_before", "certificate.not_valid_after",
        "certificate.key_alg", "certificate.sig_alg",
        "certificate.key_length", "san.dns",
        "basic_constraints.ca", "basic_constraints.path_len",
    )
    TYPES = (
        "time", "string", "count", "string",
        "string", "string",
        "time", "time",
        "string", "string",
        "count", "vector[string]",
        "bool", "count",
    )

    def to_row(self) -> list[object]:
        return [
            self.ts, self.fingerprint, self.certificate_version,
            self.certificate_serial, self.certificate_subject,
            self.certificate_issuer, self.certificate_not_valid_before,
            self.certificate_not_valid_after, self.certificate_key_alg,
            self.certificate_sig_alg, self.certificate_key_length,
            list(self.san_dns), self.basic_constraints_ca,
            self.basic_constraints_path_len,
        ]

    @classmethod
    def from_row(cls, row: dict) -> "X509Record":
        return cls(
            ts=row["ts"],
            fingerprint=row["fingerprint"],
            certificate_version=row["certificate.version"],
            certificate_serial=row["certificate.serial"],
            certificate_subject=row["certificate.subject"],
            certificate_issuer=row["certificate.issuer"],
            certificate_not_valid_before=row["certificate.not_valid_before"],
            certificate_not_valid_after=row["certificate.not_valid_after"],
            certificate_key_alg=row["certificate.key_alg"],
            certificate_sig_alg=row["certificate.sig_alg"],
            certificate_key_length=row["certificate.key_length"],
            san_dns=tuple(row["san.dns"] or ()),
            basic_constraints_ca=row["basic_constraints.ca"],
            basic_constraints_path_len=row["basic_constraints.path_len"],
        )


def ssl_record_from_connection(connection: ConnectionRecord) -> SSLRecord:
    return SSLRecord(
        ts=connection.timestamp.timestamp(),
        uid=connection.uid,
        id_orig_h=connection.client.ip,
        id_orig_p=connection.client.port,
        id_resp_h=connection.server.ip,
        id_resp_p=connection.server.port,
        version=connection.version.value,
        server_name=connection.sni,
        established=connection.established,
        cert_chain_fps=connection.chain_fingerprints,
        validation_status=connection.validation_detail,
    )


def x509_record_from_certificate(certificate: Certificate,
                                 observed_at: datetime) -> X509Record:
    ext = certificate.extensions
    bc = ext.basic_constraints
    san = ext.subject_alt_name
    return X509Record(
        ts=observed_at.timestamp(),
        fingerprint=certificate.fingerprint,
        certificate_version=certificate.version,
        certificate_serial=certificate.serial,
        certificate_subject=certificate.subject.rfc4514(),
        certificate_issuer=certificate.issuer.rfc4514(),
        certificate_not_valid_before=certificate.validity.not_before.timestamp(),
        certificate_not_valid_after=certificate.validity.not_after.timestamp(),
        certificate_key_alg=certificate.key_algorithm.value,
        certificate_sig_alg=certificate.signature_algorithm,
        certificate_key_length=certificate.key_bits,
        san_dns=tuple(san.dns_names) if san else (),
        basic_constraints_ca=bc.ca if bc else None,
        basic_constraints_path_len=bc.path_len if bc else None,
    )

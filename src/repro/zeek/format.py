"""Zeek ASCII (TSV) log format writer and reader.

Implements the classic Zeek log layout — ``#separator``, ``#fields``,
``#types`` headers, tab-separated rows, ``-`` for unset, ``(empty)`` for
empty collections, comma-joined vectors — so the analyzer can consume
either our simulated logs or real Zeek output byte-for-byte.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, TextIO

from ..obs import instruments
from ..obs.tracing import trace_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.injector import FaultInjector
    from ..resilience.quarantine import Quarantine

__all__ = ["ZeekFormatError", "ZeekLogWriter", "ZeekLogReader",
           "read_zeek_log", "write_zeek_log"]


class ZeekFormatError(ValueError):
    """A malformed Zeek log, pinpointed to its file and line.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working; the message carries ``source:line`` so an
    operator staring at a 40M-row file knows exactly where to look.
    """

    def __init__(self, message: str, *, source: Optional[str] = None,
                 line: Optional[int] = None):
        self.source = source
        self.line = line
        self.reason = message
        location = ""
        if source is not None or line is not None:
            location = f"{source or '<stream>'}:{line or '?'}: "
        super().__init__(f"{location}{message}")

_UNSET = "-"
_EMPTY = "(empty)"
_SET_SEP = ","


def _render_scalar(value: object, zeek_type: str) -> str:
    if value is None:
        return _UNSET
    if zeek_type == "bool":
        return "T" if value else "F"
    if zeek_type == "time":
        return f"{float(value):.6f}"
    if zeek_type in ("count", "int", "port"):
        return str(int(value))
    if zeek_type == "double":
        return repr(float(value))
    text = str(value)
    if text == "":
        return _EMPTY
    # Zeek escapes embedded separators.
    return text.replace("\t", "\\x09").replace("\n", "\\x0a")


def _render(value: object, zeek_type: str) -> str:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if value is None:
            return _UNSET
        items = list(value)  # type: ignore[arg-type]
        if not items:
            return _EMPTY
        return _SET_SEP.join(_render_scalar(item, inner) for item in items)
    return _render_scalar(value, zeek_type)


def _parse_scalar(text: str, zeek_type: str) -> object:
    if text == _UNSET:
        return None
    if zeek_type == "bool":
        return text == "T"
    if zeek_type == "time":
        return float(text)
    if zeek_type in ("count", "int", "port"):
        return int(text)
    if zeek_type == "double":
        return float(text)
    if text == _EMPTY:
        return ""
    return text.replace("\\x09", "\t").replace("\\x0a", "\n")


def _parse(text: str, zeek_type: str) -> object:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if text == _UNSET:
            return None
        if text == _EMPTY:
            return []
        return [_parse_scalar(part, inner) for part in text.split(_SET_SEP)]
    return _parse_scalar(text, zeek_type)


class ZeekLogWriter:
    """Streams rows into a Zeek ASCII log."""

    def __init__(self, stream: TextIO, path: str,
                 fields: Sequence[str], types: Sequence[str],
                 *, open_time: Optional[datetime] = None):
        if len(fields) != len(types):
            raise ValueError("fields and types must be the same length")
        self.stream = stream
        self.path = path
        self.fields = tuple(fields)
        self.types = tuple(types)
        self._closed = False
        #: Pinning the header timestamps makes output byte-reproducible.
        self._open_time = open_time
        self._rows_metric = instruments.ZEEK_ROWS.labels(
            direction="written", path=path)
        self._write_header()

    def _stamp(self) -> str:
        moment = self._open_time or datetime.now(timezone.utc)
        return moment.strftime("%Y-%m-%d-%H-%M-%S")

    def _write_header(self) -> None:
        opened = self._stamp()
        header = (
            "#separator \\x09\n"
            f"#set_separator\t{_SET_SEP}\n"
            f"#empty_field\t{_EMPTY}\n"
            f"#unset_field\t{_UNSET}\n"
            f"#path\t{self.path}\n"
            f"#open\t{opened}\n"
            "#fields\t" + "\t".join(self.fields) + "\n"
            "#types\t" + "\t".join(self.types) + "\n"
        )
        self.stream.write(header)

    def write_row(self, values: Sequence[object]) -> None:
        if self._closed:
            raise ValueError("log already closed")
        if len(values) != len(self.fields):
            raise ValueError(
                f"row has {len(values)} values; log has {len(self.fields)} fields")
        rendered = (_render(v, t) for v, t in zip(values, self.types))
        self.stream.write("\t".join(rendered) + "\n")
        self._rows_metric.inc()

    def close(self) -> None:
        if not self._closed:
            self.stream.write(f"#close\t{self._stamp()}\n")
            self._closed = True

    def __enter__(self) -> "ZeekLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ZeekLogReader:
    """Parses a Zeek ASCII log into typed dict rows.

    By default any malformed row raises :class:`ZeekFormatError` (carrying
    the source path and line number).  Given a ``quarantine`` sink, bad
    rows are captured there — reason, detail, raw bytes — and iteration
    continues, which is how a year-scale ingest survives row 40M being
    truncated.  A ``faults`` injector corrupts data rows *before* parsing,
    simulating an already-damaged file deterministically.
    """

    def __init__(self, stream: TextIO, *, source: Optional[str] = None,
                 quarantine: "Optional[Quarantine]" = None,
                 faults: "Optional[FaultInjector]" = None):
        self.stream = stream
        self.source = source
        self.quarantine = quarantine
        self.faults = faults
        self.path: Optional[str] = None
        self.fields: tuple[str, ...] = ()
        self.types: tuple[str, ...] = ()

    def _bad_row(self, *, line: int, reason: str, detail: str,
                 raw: str) -> None:
        """Quarantine a malformed row, or raise when running strict."""
        if self.quarantine is None:
            raise ZeekFormatError(detail, source=self.source, line=line)
        self.quarantine.add(source=self.source or self.path or "<stream>",
                            line=line, reason=reason, detail=detail, raw=raw)

    def __iter__(self) -> Iterator[dict]:
        rows = 0
        faults = self.faults
        try:
            for lineno, line in enumerate(self.stream, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#"):
                    self._consume_header(line)
                    continue
                if faults is not None:
                    corrupted = faults.corrupt_line(line, lineno)
                    if corrupted is not None:
                        line = corrupted
                if not self.fields:
                    self._bad_row(line=lineno, reason="no-header",
                                  detail="data row encountered before "
                                         "#fields header", raw=line)
                    continue
                parts = line.split("\t")
                if len(parts) != len(self.fields):
                    self._bad_row(line=lineno, reason="column-count",
                                  detail=f"row has {len(parts)} columns, "
                                         f"expected {len(self.fields)}",
                                  raw=line)
                    continue
                try:
                    row = {
                        field: _parse(text, zeek_type)
                        for field, text, zeek_type in zip(self.fields, parts,
                                                          self.types)
                    }
                except ValueError as exc:
                    self._bad_row(line=lineno, reason="field-parse",
                                  detail=f"unparseable field value: {exc}",
                                  raw=line)
                    continue
                yield row
                rows += 1
        finally:
            if rows:
                instruments.ZEEK_ROWS.inc(rows, direction="read",
                                          path=self.path or "unknown")

    def _consume_header(self, line: str) -> None:
        if line.startswith("#path\t"):
            self.path = line.split("\t", 1)[1]
        elif line.startswith("#fields\t"):
            self.fields = tuple(line.split("\t")[1:])
        elif line.startswith("#types\t"):
            self.types = tuple(line.split("\t")[1:])


def write_zeek_log(path_on_disk: str, log_path: str, fields: Sequence[str],
                   types: Sequence[str], rows: Iterable[Sequence[object]],
                   *, open_time: Optional[datetime] = None) -> int:
    """Write a whole log file; returns the number of data rows written.

    ``open_time`` pins the ``#open``/``#close`` header timestamps so the
    file is byte-reproducible (round-trip tests, content-addressed caches).
    """
    count = 0
    with trace_span("zeek_write", path=log_path):
        with open(path_on_disk, "w", encoding="utf-8") as handle:
            with ZeekLogWriter(handle, log_path, fields, types,
                               open_time=open_time) as writer:
                for row in rows:
                    writer.write_row(row)
                    count += 1
    return count


def read_zeek_log(path_on_disk: str, *,
                  quarantine: "Optional[Quarantine]" = None,
                  faults: "Optional[FaultInjector]" = None
                  ) -> tuple[ZeekLogReader, list[dict]]:
    """Read a whole log file; returns the reader (for metadata) and rows.

    With a ``quarantine`` sink, malformed rows are captured and skipped
    instead of raising; ``faults`` deterministically corrupts rows first
    (see :class:`ZeekLogReader`).
    """
    with trace_span("zeek_read"):
        with open(path_on_disk, "r", encoding="utf-8") as handle:
            reader = ZeekLogReader(handle, source=path_on_disk,
                                   quarantine=quarantine, faults=faults)
            rows = list(reader)
    return reader, rows


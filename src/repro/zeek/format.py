"""Zeek ASCII (TSV) log format writer and reader.

Implements the classic Zeek log layout — ``#separator``, ``#fields``,
``#types`` headers, tab-separated rows, ``-`` for unset, ``(empty)`` for
empty collections, comma-joined vectors — so the analyzer can consume
either our simulated logs or real Zeek output byte-for-byte.

Two read paths share identical semantics:

* the **compiled** path (default) generates one ``row_of(parts)``
  function per ``(#fields, #types)`` header via ``exec`` — the
  per-column type dispatch is resolved once at compile time instead of
  per cell — and consumes the stream in large chunks, parsing "clean"
  blocks (no headers, no blanks, no injected faults) with a single list
  comprehension and falling back to a line-by-line loop that preserves
  exact quarantine reasons and ``file:line`` locations;
* the **legacy** path (``compiled=False``) is the original per-line
  interpreter, kept as the executable specification the compiled path is
  tested against (``tests/zeek/test_format_codec.py``).
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List,
                    Optional, Sequence, TextIO, Tuple)

from ..obs import instruments
from ..obs.tracing import trace_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.injector import FaultInjector
    from ..resilience.quarantine import Quarantine

__all__ = ["ZeekFormatError", "ZeekLogWriter", "ZeekLogReader",
           "iter_zeek_log", "read_zeek_log", "write_zeek_log"]


class ZeekFormatError(ValueError):
    """A malformed Zeek log, pinpointed to its file and line.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working; the message carries ``source:line`` so an
    operator staring at a 40M-row file knows exactly where to look.
    """

    def __init__(self, message: str, *, source: Optional[str] = None,
                 line: Optional[int] = None):
        self.source = source
        self.line = line
        self.reason = message
        location = ""
        if source is not None or line is not None:
            location = f"{source or '<stream>'}:{line or '?'}: "
        super().__init__(f"{location}{message}")

_UNSET = "-"
_EMPTY = "(empty)"
_SET_SEP = ","

#: Characters of log text pulled per read() on the compiled path.  Large
#: enough that per-chunk bookkeeping amortises to nothing, small enough
#: that a shard worker's resident set stays a few MiB.
_CHUNK_CHARS = 1 << 20


def _render_scalar(value: object, zeek_type: str) -> str:
    if value is None:
        return _UNSET
    if zeek_type == "bool":
        return "T" if value else "F"
    if zeek_type == "time":
        return f"{float(value):.6f}"
    if zeek_type in ("count", "int", "port"):
        return str(int(value))
    if zeek_type == "double":
        return repr(float(value))
    text = str(value)
    if text == "":
        return _EMPTY
    # Zeek escapes embedded separators.
    return text.replace("\t", "\\x09").replace("\n", "\\x0a")


def _render(value: object, zeek_type: str) -> str:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if value is None:
            return _UNSET
        items = list(value)  # type: ignore[arg-type]
        if not items:
            return _EMPTY
        return _SET_SEP.join(_render_scalar(item, inner) for item in items)
    return _render_scalar(value, zeek_type)


def _parse_scalar(text: str, zeek_type: str) -> object:
    if text == _UNSET:
        return None
    if zeek_type == "bool":
        return text == "T"
    if zeek_type == "time":
        return float(text)
    if zeek_type in ("count", "int", "port"):
        return int(text)
    if zeek_type == "double":
        return float(text)
    if text == _EMPTY:
        return ""
    return text.replace("\\x09", "\t").replace("\\x0a", "\n")


def _parse(text: str, zeek_type: str) -> object:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if text == _UNSET:
            return None
        if text == _EMPTY:
            return []
        return [_parse_scalar(part, inner) for part in text.split(_SET_SEP)]
    return _parse_scalar(text, zeek_type)


# -- compiled row codecs ------------------------------------------------------


class _ColumnCountError(ValueError):
    """Raised by a compiled codec when a row's column count is wrong."""

    def __init__(self, columns: int):
        super().__init__(columns)
        self.columns = columns


def _compile_vector_parser(zeek_type: str) -> Callable[[str], object]:
    inner = zeek_type[zeek_type.index("[") + 1 : -1]
    if inner == "bool":
        def parse_vector(text: str) -> object:
            if text == _UNSET:
                return None
            if text == _EMPTY:
                return []
            return [None if t == _UNSET else t == "T"
                    for t in text.split(_SET_SEP)]
    elif inner in ("count", "int", "port"):
        def parse_vector(text: str) -> object:
            if text == _UNSET:
                return None
            if text == _EMPTY:
                return []
            return [None if t == _UNSET else int(t)
                    for t in text.split(_SET_SEP)]
    elif inner in ("time", "double"):
        def parse_vector(text: str) -> object:
            if text == _UNSET:
                return None
            if text == _EMPTY:
                return []
            return [None if t == _UNSET else float(t)
                    for t in text.split(_SET_SEP)]
    else:
        def parse_vector(text: str) -> object:
            if text == _UNSET:
                return None
            if text == _EMPTY:
                return []
            # The common case — fingerprint/name vectors with no escape
            # sequences and no unset/empty elements — is a bare split;
            # one C-level substring scan each rules the slow cases out.
            if "\\x" in text or "-" in text or "(empty)" in text:
                return [None if t == _UNSET else
                        "" if t == _EMPTY else
                        (t.replace("\\x09", "\t").replace("\\x0a", "\n")
                         if "\\x" in t else t)
                        for t in text.split(_SET_SEP)]
            return text.split(_SET_SEP)

    return parse_vector


def _compile_row_codec(fields: Tuple[str, ...],
                       types: Tuple[str, ...]) -> Callable[[List[str]], dict]:
    """Generate a ``row_of(parts)`` specialised to one log header.

    The per-column ``zeek_type`` dispatch of :func:`_parse` is resolved
    here, once, into straight-line code — one dict-literal entry per
    column, ``int``/``float``/string logic inlined via walrus bindings —
    so the hot loop never compares type strings again.  Semantics match
    :func:`_parse` exactly (asserted by the codec parity tests).
    """
    namespace: Dict[str, object] = {"_ColumnCountError": _ColumnCountError}
    entries = []
    for i, (field, zeek_type) in enumerate(zip(fields, types)):
        v = f"v{i}"
        if zeek_type in ("count", "int", "port"):
            expr = f'(None if ({v} := parts[{i}]) == "-" else int({v}))'
        elif zeek_type in ("time", "double"):
            expr = f'(None if ({v} := parts[{i}]) == "-" else float({v}))'
        elif zeek_type == "bool":
            expr = f'(None if ({v} := parts[{i}]) == "-" else {v} == "T")'
        elif zeek_type.startswith(("vector[", "set[")):
            namespace[f"p{i}"] = _compile_vector_parser(zeek_type)
            inner = zeek_type[zeek_type.index("[") + 1 : -1]
            if inner in ("bool", "count", "int", "port", "time", "double"):
                expr = f"p{i}(parts[{i}])"
            else:
                # String vectors: the overwhelmingly common case (e.g.
                # cert_chain_fps) has no escapes and no unset/empty
                # elements — a bare split, checked by three C-level
                # substring scans; anything else goes to the full parser.
                expr = (
                    f'(None if ({v} := parts[{i}]) == "-" else '
                    f'[] if {v} == "(empty)" else '
                    f'{v}.split(",") if ("\\\\x" not in {v} '
                    f'and "-" not in {v} and "(empty)" not in {v}) else '
                    f'p{i}({v}))'
                )
        else:
            expr = (
                f'(None if ({v} := parts[{i}]) == "-" else '
                f'"" if {v} == "(empty)" else '
                f'({v}.replace("\\\\x09", "\\t").replace("\\\\x0a", "\\n") '
                f'if "\\\\x" in {v} else {v}))'
            )
        entries.append(f"{field!r}: {expr}")
    body = ",\n        ".join(entries)
    source = (
        f"def row_of(parts):\n"
        f"    if len(parts) != {len(fields)}:\n"
        f"        raise _ColumnCountError(len(parts))\n"
        f"    return {{{body}}}\n"
    )
    exec(source, namespace)  # noqa: S102 - source built from header tokens
    return namespace["row_of"]  # type: ignore[return-value]


_CODEC_CACHE: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]],
                   Callable[[List[str]], dict]] = {}


def _codec_for(fields: Tuple[str, ...],
               types: Tuple[str, ...]) -> Callable[[List[str]], dict]:
    key = (fields, types)
    codec = _CODEC_CACHE.get(key)
    if codec is None:
        codec = _compile_row_codec(fields, types)
        _CODEC_CACHE[key] = codec
    return codec


def _compile_renderer(zeek_type: str) -> Callable[[object], str]:
    """One render closure per column — the write-side codec."""
    if zeek_type.startswith(("vector[", "set[")):
        inner = _compile_renderer(zeek_type[zeek_type.index("[") + 1 : -1])

        def render_vector(value: object) -> str:
            if value is None:
                return _UNSET
            items = list(value)  # type: ignore[arg-type]
            if not items:
                return _EMPTY
            return _SET_SEP.join([inner(item) for item in items])

        return render_vector
    if zeek_type == "bool":
        return lambda v: _UNSET if v is None else ("T" if v else "F")
    if zeek_type == "time":
        return lambda v: _UNSET if v is None else f"{float(v):.6f}"
    if zeek_type in ("count", "int", "port"):
        return lambda v: _UNSET if v is None else str(int(v))
    if zeek_type == "double":
        return lambda v: _UNSET if v is None else repr(float(v))

    def render_string(value: object) -> str:
        if value is None:
            return _UNSET
        text = str(value)
        if text == "":
            return _EMPTY
        return text.replace("\t", "\\x09").replace("\n", "\\x0a")

    return render_string


def _scalar_render_expr(zeek_type: str, var: str, tmp: str) -> str:
    """One scalar column (or container item) as an inline expression.

    Semantics match the legacy closures exactly; the ``__class__ is``
    fast paths only skip conversion calls that would be identity anyway
    (the simulation hands the writers exact ``float``/``int``/``str``
    instances, so the slow branch is the exception, not the rule — note
    ``bool`` is not ``int`` under ``is``, so ``True`` in a count column
    still renders through ``str(int(...))`` as ``"1"``).
    """
    if zeek_type in ("count", "int", "port"):
        return (f'("-" if {var} is None else str({var}) '
                f'if {var}.__class__ is int else str(int({var})))')
    if zeek_type == "time":
        return (f'("-" if {var} is None else format({var}, ".6f") '
                f'if {var}.__class__ is float '
                f'else format(float({var}), ".6f"))')
    if zeek_type == "double":
        return (f'("-" if {var} is None else repr({var}) '
                f'if {var}.__class__ is float else repr(float({var})))')
    if zeek_type == "bool":
        return f'("-" if {var} is None else "T" if {var} else "F")'
    # Strings: escape embedded separators only when present (two C-level
    # containment scans beat two unconditional replaces on the
    # overwhelmingly escape-free common case).
    return (f'("-" if {var} is None else '
            f'"(empty)" if ({tmp} := {var} if {var}.__class__ is str '
            f'else str({var})) == "" else '
            f'{tmp}.replace("\\t", "\\\\x09").replace("\\n", "\\\\x0a") '
            f'if "\\t" in {tmp} or "\\n" in {tmp} else {tmp})')


def _compile_row_renderer(fields: Tuple[str, ...],
                          types: Tuple[str, ...]
                          ) -> Callable[[Sequence[object]], str]:
    """Generate a ``line_of(values)`` specialised to one log header.

    The write-side mirror of :func:`_compile_row_codec`: the per-column
    type dispatch of :func:`_render` is resolved once into a single
    expression that builds the whole tab-joined data line (trailing
    newline included), so the hot loop never compares type strings or
    walks a renderer tuple again.  Semantics match the legacy per-column
    closures exactly (asserted by the renderer parity tests).
    """
    namespace: Dict[str, object] = {"_ColumnCountError": _ColumnCountError}
    exprs = []
    for i, zeek_type in enumerate(types):
        v = f"v{i}"
        if zeek_type.startswith(("vector[", "set[")):
            inner_type = zeek_type[zeek_type.index("[") + 1:-1]
            if inner_type.startswith(("vector[", "set[")):
                # Nested containers: rare enough to keep on the closure.
                namespace[f"r{i}"] = _compile_renderer(zeek_type)
                expr = f"r{i}({v})"
            else:
                inner = _scalar_render_expr(inner_type, "_it", f"_t{i}")
                expr = (f'("-" if {v} is None else '
                        f'"(empty)" if not ({v} := list({v})) else '
                        f'",".join([{inner} for _it in {v}]))')
        else:
            expr = _scalar_render_expr(zeek_type, v, f"s{i}")
        exprs.append(expr)
    body = ",\n        ".join(exprs)
    unpack = ", ".join(f"v{i}" for i in range(len(types))) + \
        ("," if len(types) == 1 else "")
    source = (
        f"def line_of(values):\n"
        f"    try:\n"
        f"        {unpack} = values\n"
        f"    except ValueError:\n"
        f"        raise _ColumnCountError(len(values)) from None\n"
        f'    return "\\t".join((\n'
        f"        {body},\n"
        f'    )) + "\\n"\n'
    )
    exec(source, namespace)  # noqa: S102 - source built from header tokens
    return namespace["line_of"]  # type: ignore[return-value]


_RENDERER_CACHE: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]],
                      Callable[[Sequence[object]], str]] = {}


def _renderer_for(fields: Tuple[str, ...],
                  types: Tuple[str, ...]) -> Callable[[Sequence[object]], str]:
    key = (fields, types)
    renderer = _RENDERER_CACHE.get(key)
    if renderer is None:
        renderer = _compile_row_renderer(fields, types)
        _RENDERER_CACHE[key] = renderer
    return renderer


#: Rendered lines buffered per writer before one block ``write()``; sized
#: so a flush is a few hundred KiB — large enough to amortise the stream
#: call, small enough to keep a 12-way generation fleet's memory flat.
_WRITE_BUFFER_LINES = 4096


class ZeekLogWriter:
    """Streams rows into a Zeek ASCII log.

    ``compiled=True`` (the default) renders each row through the
    exec-generated per-header line renderer and buffers rendered lines
    into block writes; ``compiled=False`` keeps the original per-column
    closure walk with one ``write()`` per row, retained as the
    executable specification (and the benchmark baseline) the compiled
    path is tested against.  Both produce byte-identical files and
    identical row metrics.
    """

    def __init__(self, stream: TextIO, path: str,
                 fields: Sequence[str], types: Sequence[str],
                 *, open_time: Optional[datetime] = None,
                 compiled: bool = True):
        if len(fields) != len(types):
            raise ValueError("fields and types must be the same length")
        self.stream = stream
        self.path = path
        self.fields = tuple(fields)
        self.types = tuple(types)
        self.compiled = compiled
        self._closed = False
        #: Pinning the header timestamps makes output byte-reproducible.
        self._open_time = open_time
        self._rows_metric = instruments.ZEEK_ROWS.labels(
            direction="written", path=path)
        self._line_of = (_renderer_for(self.fields, self.types)
                         if compiled else None)
        self._buffer: List[str] = []
        self._renderers = tuple(_compile_renderer(t) for t in self.types)
        self._write_header()

    def _stamp(self) -> str:
        moment = self._open_time or datetime.now(timezone.utc)
        return moment.strftime("%Y-%m-%d-%H-%M-%S")

    def _write_header(self) -> None:
        opened = self._stamp()
        header = (
            "#separator \\x09\n"
            f"#set_separator\t{_SET_SEP}\n"
            f"#empty_field\t{_EMPTY}\n"
            f"#unset_field\t{_UNSET}\n"
            f"#path\t{self.path}\n"
            f"#open\t{opened}\n"
            "#fields\t" + "\t".join(self.fields) + "\n"
            "#types\t" + "\t".join(self.types) + "\n"
        )
        self.stream.write(header)

    def write_row(self, values: Sequence[object]) -> None:
        if self._closed:
            raise ValueError("log already closed")
        line_of = self._line_of
        if line_of is not None:
            try:
                buffer = self._buffer
                buffer.append(line_of(values))
            except _ColumnCountError as exc:
                raise ValueError(
                    f"row has {exc.columns} values; "
                    f"log has {len(self.fields)} fields") from None
            if len(buffer) >= _WRITE_BUFFER_LINES:
                self._flush()
            return
        if len(values) != len(self.fields):
            raise ValueError(
                f"row has {len(values)} values; log has {len(self.fields)} fields")
        rendered = [render(v) for render, v in zip(self._renderers, values)]
        self.stream.write("\t".join(rendered) + "\n")
        self._rows_metric.inc()

    def _flush(self) -> None:
        buffer = self._buffer
        if buffer:
            self.stream.write("".join(buffer))
            self._rows_metric.inc(len(buffer))
            buffer.clear()

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self.stream.write(f"#close\t{self._stamp()}\n")
            self._closed = True

    def __enter__(self) -> "ZeekLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ZeekLogReader:
    """Parses a Zeek ASCII log into typed dict rows.

    By default any malformed row raises :class:`ZeekFormatError` (carrying
    the source path and line number).  Given a ``quarantine`` sink, bad
    rows are captured there — reason, detail, raw bytes — and iteration
    continues, which is how a year-scale ingest survives row 40M being
    truncated.  A ``faults`` injector corrupts data rows *before* parsing,
    simulating an already-damaged file deterministically.

    ``compiled=True`` (the default) uses the exec-generated per-header
    row codec and chunked block reads; ``compiled=False`` runs the
    original per-line interpreter.  Both produce identical rows, metric
    counts, quarantine records, and strict-mode errors.
    """

    def __init__(self, stream: TextIO, *, source: Optional[str] = None,
                 quarantine: "Optional[Quarantine]" = None,
                 faults: "Optional[FaultInjector]" = None,
                 compiled: bool = True):
        self.stream = stream
        self.source = source
        self.quarantine = quarantine
        self.faults = faults
        self.compiled = compiled
        self.path: Optional[str] = None
        self.fields: tuple[str, ...] = ()
        self.types: tuple[str, ...] = ()
        self._row_of: Optional[Callable[[List[str]], dict]] = None

    def _bad_row(self, *, line: int, reason: str, detail: str,
                 raw: str) -> None:
        """Quarantine a malformed row, or raise when running strict."""
        if self.quarantine is None:
            raise ZeekFormatError(detail, source=self.source, line=line)
        self.quarantine.add(source=self.source or self.path or "<stream>",
                            line=line, reason=reason, detail=detail, raw=raw)

    def __iter__(self) -> Iterator[dict]:
        if self.compiled:
            return self._iter_compiled()
        return self._iter_legacy()

    def read_all(self) -> List[dict]:
        """All rows as a list — the fastest way to drain a whole log.

        Skips the generator protocol entirely on the compiled path (one
        ``list.extend`` per parsed block instead of one frame resume per
        row), which is worth ~30% on this hot loop.
        """
        if not self.compiled:
            return list(self._iter_legacy())
        rows: List[dict] = []
        extend = rows.extend
        for block in self._iter_blocks():
            extend(block)
        return rows

    # -- compiled path --------------------------------------------------------

    def _iter_compiled(self) -> Iterator[dict]:
        for block in self._iter_blocks():
            yield from block

    def _iter_blocks(self) -> Iterator[List[dict]]:
        """Yield lists of parsed rows, one list per chunk of input.

        Reads ``_CHUNK_CHARS`` at a time, carries the trailing partial
        line into the next chunk, and hands each run of complete lines to
        :meth:`_process_block`.  The row-count metric is flushed exactly
        once, at exhaustion, under the final ``#path`` label (or
        ``unknown`` when the log never declared one).
        """
        rows = 0
        stream = self.stream
        faults = self.faults
        try:
            carry = ""
            lineno = 0
            while True:
                chunk = stream.read(_CHUNK_CHARS)
                if not chunk:
                    break
                buffer = carry + chunk
                cut = buffer.rfind("\n")
                if cut < 0:
                    carry = buffer
                    continue
                text = buffer[:cut]
                carry = buffer[cut + 1:]
                block, nlines = self._process_block(text, lineno, faults)
                lineno += nlines
                if block:
                    rows += len(block)
                    yield block
            if carry:  # final line without a trailing newline
                row = self._process_line(carry, lineno + 1)
                if row is not None:
                    rows += 1
                    yield [row]
        finally:
            if rows:
                instruments.ZEEK_ROWS.inc(rows, direction="read",
                                          path=self.path or "unknown")

    def _process_block(self, text: str, base_lineno: int,
                       faults: "Optional[FaultInjector]"
                       ) -> Tuple[List[dict], int]:
        """Parse one newline-joined run of complete lines.

        The fast path applies when the block is provably all data rows —
        no ``#`` header anywhere, no blank lines, no fault injector, and
        a codec already built.  Data fields escape embedded newlines
        (``\\x0a``), so scanning the joined text for ``\\n#`` / ``\\n\\n``
        is a sound containment check.  Anything else — or any parse error
        inside the fast path — falls back to the per-line loop, which
        reproduces exact quarantine reasons and line numbers.
        """
        lines = text.split("\n")
        row_of = self._row_of
        if (row_of is not None and faults is None and text
                and text[0] != "#" and text[0] != "\n" and text[-1] != "\n"
                and "\n#" not in text and "\n\n" not in text):
            try:
                return [row_of(line.split("\t")) for line in lines], len(lines)
            except ValueError:
                pass  # some row is malformed: redo slowly for exact locations
        out: List[dict] = []
        if faults is None:
            # Mixed block (headers, blanks, or no codec yet): batch the
            # runs of plain data lines between them instead of dropping
            # the whole block to the per-line loop.
            run_start = 0
            for idx, line in enumerate(lines):
                if line and line[0] != "#":
                    continue
                self._run_into(lines, run_start, idx, base_lineno, out)
                self._process_line(line, base_lineno + idx + 1)
                run_start = idx + 1
            self._run_into(lines, run_start, len(lines), base_lineno, out)
            return out, len(lines)
        lineno = base_lineno
        for line in lines:
            lineno += 1
            row = self._process_line(line, lineno)
            if row is not None:
                out.append(row)
        return out, len(lines)

    def _run_into(self, lines: List[str], start: int, stop: int,
                  base_lineno: int, out: List[dict]) -> None:
        """Parse ``lines[start:stop]`` (all plain data rows) into ``out``."""
        if start >= stop:
            return
        row_of = self._row_of
        if row_of is None and self.fields:
            row_of = self._ensure_codec()
        if row_of is not None:
            try:
                out.extend([row_of(line.split("\t"))
                            for line in lines[start:stop]])
                return
            except ValueError:
                pass  # fall through for exact quarantine locations
        for idx in range(start, stop):
            row = self._process_line(lines[idx], base_lineno + idx + 1)
            if row is not None:
                out.append(row)

    def _process_line(self, line: str, lineno: int) -> Optional[dict]:
        """One line through the full pipeline: headers, faults, codec."""
        if not line:
            return None
        if line[0] == "#":
            self._consume_header(line)
            return None
        faults = self.faults
        if faults is not None:
            corrupted = faults.corrupt_line(line, lineno)
            if corrupted is not None:
                line = corrupted
        row_of = self._row_of
        if row_of is None:
            if not self.fields:
                self._bad_row(line=lineno, reason="no-header",
                              detail="data row encountered before "
                                     "#fields header", raw=line)
                return None
            row_of = self._ensure_codec()
        try:
            return row_of(line.split("\t"))
        except _ColumnCountError as exc:
            self._bad_row(line=lineno, reason="column-count",
                          detail=f"row has {exc.columns} columns, "
                                 f"expected {len(self.fields)}",
                          raw=line)
        except ValueError as exc:
            self._bad_row(line=lineno, reason="field-parse",
                          detail=f"unparseable field value: {exc}", raw=line)
        return None

    def _ensure_codec(self) -> Callable[[List[str]], dict]:
        codec = _codec_for(self.fields, self.types)
        self._row_of = codec
        return codec

    # -- legacy path ----------------------------------------------------------

    def _iter_legacy(self) -> Iterator[dict]:
        rows = 0
        faults = self.faults
        try:
            for lineno, line in enumerate(self.stream, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#"):
                    self._consume_header(line)
                    continue
                if faults is not None:
                    corrupted = faults.corrupt_line(line, lineno)
                    if corrupted is not None:
                        line = corrupted
                if not self.fields:
                    self._bad_row(line=lineno, reason="no-header",
                                  detail="data row encountered before "
                                         "#fields header", raw=line)
                    continue
                parts = line.split("\t")
                if len(parts) != len(self.fields):
                    self._bad_row(line=lineno, reason="column-count",
                                  detail=f"row has {len(parts)} columns, "
                                         f"expected {len(self.fields)}",
                                  raw=line)
                    continue
                try:
                    row = {
                        field: _parse(text, zeek_type)
                        for field, text, zeek_type in zip(self.fields, parts,
                                                          self.types)
                    }
                except ValueError as exc:
                    self._bad_row(line=lineno, reason="field-parse",
                                  detail=f"unparseable field value: {exc}",
                                  raw=line)
                    continue
                yield row
                rows += 1
        finally:
            if rows:
                instruments.ZEEK_ROWS.inc(rows, direction="read",
                                          path=self.path or "unknown")

    def _consume_header(self, line: str) -> None:
        if line.startswith("#path\t"):
            self.path = line.split("\t", 1)[1]
        elif line.startswith("#fields\t"):
            self.fields = tuple(line.split("\t")[1:])
            self._row_of = None
        elif line.startswith("#types\t"):
            self.types = tuple(line.split("\t")[1:])
            self._row_of = None


def write_zeek_log(path_on_disk: str, log_path: str, fields: Sequence[str],
                   types: Sequence[str], rows: Iterable[Sequence[object]],
                   *, open_time: Optional[datetime] = None,
                   compiled: bool = True) -> int:
    """Write a whole log file; returns the number of data rows written.

    ``open_time`` pins the ``#open``/``#close`` header timestamps so the
    file is byte-reproducible (round-trip tests, content-addressed caches).
    ``compiled=False`` selects the legacy per-row write path (see
    :class:`ZeekLogWriter`).
    """
    count = 0
    with trace_span("zeek_write", path=log_path):
        with open(path_on_disk, "w", encoding="utf-8") as handle:
            with ZeekLogWriter(handle, log_path, fields, types,
                               open_time=open_time,
                               compiled=compiled) as writer:
                for row in rows:
                    writer.write_row(row)
                    count += 1
    return count


def iter_zeek_log(path_on_disk: str, *,
                  quarantine: "Optional[Quarantine]" = None,
                  faults: "Optional[FaultInjector]" = None,
                  compiled: bool = True,
                  reader_ref: "Optional[List[ZeekLogReader]]" = None
                  ) -> Iterator[dict]:
    """Stream a log file's rows without materialising the full list.

    This is the shard workers' entry point: constant memory regardless
    of shard size.  ``reader_ref``, when given, receives the underlying
    :class:`ZeekLogReader` before the first row so callers can inspect
    ``.path``/``.fields`` metadata during or after iteration.
    """
    with trace_span("zeek_read"):
        with open(path_on_disk, "r", encoding="utf-8") as handle:
            reader = ZeekLogReader(handle, source=path_on_disk,
                                   quarantine=quarantine, faults=faults,
                                   compiled=compiled)
            if reader_ref is not None:
                reader_ref.append(reader)
            yield from reader


def read_zeek_log(path_on_disk: str, *,
                  quarantine: "Optional[Quarantine]" = None,
                  faults: "Optional[FaultInjector]" = None,
                  compiled: bool = True
                  ) -> tuple[ZeekLogReader, list[dict]]:
    """Read a whole log file; returns the reader (for metadata) and rows.

    With a ``quarantine`` sink, malformed rows are captured and skipped
    instead of raising; ``faults`` deterministically corrupts rows first
    (see :class:`ZeekLogReader`).
    """
    with trace_span("zeek_read"):
        with open(path_on_disk, "r", encoding="utf-8") as handle:
            reader = ZeekLogReader(handle, source=path_on_disk,
                                   quarantine=quarantine, faults=faults,
                                   compiled=compiled)
            rows = reader.read_all()
    return reader, rows

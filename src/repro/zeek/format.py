"""Zeek ASCII (TSV) log format writer and reader.

Implements the classic Zeek log layout — ``#separator``, ``#fields``,
``#types`` headers, tab-separated rows, ``-`` for unset, ``(empty)`` for
empty collections, comma-joined vectors — so the analyzer can consume
either our simulated logs or real Zeek output byte-for-byte.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Iterable, Iterator, Optional, Sequence, TextIO

from ..obs import instruments
from ..obs.tracing import trace_span

__all__ = ["ZeekLogWriter", "ZeekLogReader", "read_zeek_log", "write_zeek_log"]

_UNSET = "-"
_EMPTY = "(empty)"
_SET_SEP = ","


def _render_scalar(value: object, zeek_type: str) -> str:
    if value is None:
        return _UNSET
    if zeek_type == "bool":
        return "T" if value else "F"
    if zeek_type == "time":
        return f"{float(value):.6f}"
    if zeek_type in ("count", "int", "port"):
        return str(int(value))
    if zeek_type == "double":
        return repr(float(value))
    text = str(value)
    if text == "":
        return _EMPTY
    # Zeek escapes embedded separators.
    return text.replace("\t", "\\x09").replace("\n", "\\x0a")


def _render(value: object, zeek_type: str) -> str:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if value is None:
            return _UNSET
        items = list(value)  # type: ignore[arg-type]
        if not items:
            return _EMPTY
        return _SET_SEP.join(_render_scalar(item, inner) for item in items)
    return _render_scalar(value, zeek_type)


def _parse_scalar(text: str, zeek_type: str) -> object:
    if text == _UNSET:
        return None
    if zeek_type == "bool":
        return text == "T"
    if zeek_type == "time":
        return float(text)
    if zeek_type in ("count", "int", "port"):
        return int(text)
    if zeek_type == "double":
        return float(text)
    if text == _EMPTY:
        return ""
    return text.replace("\\x09", "\t").replace("\\x0a", "\n")


def _parse(text: str, zeek_type: str) -> object:
    if zeek_type.startswith(("vector[", "set[")):
        inner = zeek_type[zeek_type.index("[") + 1 : -1]
        if text == _UNSET:
            return None
        if text == _EMPTY:
            return []
        return [_parse_scalar(part, inner) for part in text.split(_SET_SEP)]
    return _parse_scalar(text, zeek_type)


class ZeekLogWriter:
    """Streams rows into a Zeek ASCII log."""

    def __init__(self, stream: TextIO, path: str,
                 fields: Sequence[str], types: Sequence[str],
                 *, open_time: Optional[datetime] = None):
        if len(fields) != len(types):
            raise ValueError("fields and types must be the same length")
        self.stream = stream
        self.path = path
        self.fields = tuple(fields)
        self.types = tuple(types)
        self._closed = False
        #: Pinning the header timestamps makes output byte-reproducible.
        self._open_time = open_time
        self._rows_metric = instruments.ZEEK_ROWS.labels(
            direction="written", path=path)
        self._write_header()

    def _stamp(self) -> str:
        moment = self._open_time or datetime.now(timezone.utc)
        return moment.strftime("%Y-%m-%d-%H-%M-%S")

    def _write_header(self) -> None:
        opened = self._stamp()
        header = (
            "#separator \\x09\n"
            f"#set_separator\t{_SET_SEP}\n"
            f"#empty_field\t{_EMPTY}\n"
            f"#unset_field\t{_UNSET}\n"
            f"#path\t{self.path}\n"
            f"#open\t{opened}\n"
            "#fields\t" + "\t".join(self.fields) + "\n"
            "#types\t" + "\t".join(self.types) + "\n"
        )
        self.stream.write(header)

    def write_row(self, values: Sequence[object]) -> None:
        if self._closed:
            raise ValueError("log already closed")
        if len(values) != len(self.fields):
            raise ValueError(
                f"row has {len(values)} values; log has {len(self.fields)} fields")
        rendered = (_render(v, t) for v, t in zip(values, self.types))
        self.stream.write("\t".join(rendered) + "\n")
        self._rows_metric.inc()

    def close(self) -> None:
        if not self._closed:
            self.stream.write(f"#close\t{self._stamp()}\n")
            self._closed = True

    def __enter__(self) -> "ZeekLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ZeekLogReader:
    """Parses a Zeek ASCII log into typed dict rows."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self.path: Optional[str] = None
        self.fields: tuple[str, ...] = ()
        self.types: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[dict]:
        rows = 0
        try:
            for line in self.stream:
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#"):
                    self._consume_header(line)
                    continue
                if not self.fields:
                    raise ValueError(
                        "data row encountered before #fields header")
                parts = line.split("\t")
                if len(parts) != len(self.fields):
                    raise ValueError(
                        f"row has {len(parts)} columns, "
                        f"expected {len(self.fields)}")
                yield {
                    field: _parse(text, zeek_type)
                    for field, text, zeek_type in zip(self.fields, parts,
                                                      self.types)
                }
                rows += 1
        finally:
            if rows:
                instruments.ZEEK_ROWS.inc(rows, direction="read",
                                          path=self.path or "unknown")

    def _consume_header(self, line: str) -> None:
        if line.startswith("#path\t"):
            self.path = line.split("\t", 1)[1]
        elif line.startswith("#fields\t"):
            self.fields = tuple(line.split("\t")[1:])
        elif line.startswith("#types\t"):
            self.types = tuple(line.split("\t")[1:])


def write_zeek_log(path_on_disk: str, log_path: str, fields: Sequence[str],
                   types: Sequence[str], rows: Iterable[Sequence[object]],
                   *, open_time: Optional[datetime] = None) -> int:
    """Write a whole log file; returns the number of data rows written.

    ``open_time`` pins the ``#open``/``#close`` header timestamps so the
    file is byte-reproducible (round-trip tests, content-addressed caches).
    """
    count = 0
    with trace_span("zeek_write", path=log_path):
        with open(path_on_disk, "w", encoding="utf-8") as handle:
            with ZeekLogWriter(handle, log_path, fields, types,
                               open_time=open_time) as writer:
                for row in rows:
                    writer.write_row(row)
                    count += 1
    return count


def read_zeek_log(path_on_disk: str) -> tuple[ZeekLogReader, list[dict]]:
    """Read a whole log file; returns the reader (for metadata) and rows."""
    with trace_span("zeek_read"):
        with open(path_on_disk, "r", encoding="utf-8") as handle:
            reader = ZeekLogReader(handle)
            rows = list(reader)
    return reader, rows


"""Appendix D: issuer–subject vs key–signature validation comparison."""

from .compare import Table5Result, compare_validators
from .corpus import CorpusChain, ValidationCorpus, build_validation_corpus
from .issuer_subject import ISResult, ISVerdict, validate_issuer_subject
from .key_signature import KSResult, KSVerdict, validate_key_signature

__all__ = [
    "CorpusChain",
    "ISResult",
    "ISVerdict",
    "KSResult",
    "KSVerdict",
    "Table5Result",
    "ValidationCorpus",
    "build_validation_corpus",
    "compare_validators",
    "validate_issuer_subject",
    "validate_key_signature",
]

"""Table 5: issuer–subject vs key–signature validation comparison.

Runs both validators over the same corpus and tabulates their verdicts,
plus the agreement analysis the paper performs: mismatch positions reported
by the issuer–subject method must line up with the pair positions at which
signature verification fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.crosssign import CrossSignDisclosures
from ..x509.pem import FaultType
from .corpus import CorpusChain, ValidationCorpus
from .issuer_subject import ISVerdict, validate_issuer_subject
from .key_signature import KSVerdict, validate_key_signature

__all__ = ["Table5Result", "compare_validators"]


@dataclass
class Table5Result:
    """Both methods' verdict counts plus agreement diagnostics."""

    total: int = 0
    is_single: int = 0
    is_valid: int = 0
    is_broken: int = 0
    ks_single: int = 0
    ks_valid: int = 0
    ks_broken: int = 0
    ks_unrecognized: int = 0
    #: Chains where the two methods disagree (IS valid, KS broken/etc.).
    disagreements: int = 0
    #: Broken chains where both methods exist and report identical
    #: failure-pair positions.
    position_agreements: int = 0
    position_comparisons: int = 0

    def rows(self) -> list[dict]:
        """Table 5 layout: one row per outcome, both method columns."""
        return [
            {"outcome": "#. Single-certificate chains",
             "issuer_subject": self.is_single, "key_signature": self.ks_single},
            {"outcome": "#. Valid chains",
             "issuer_subject": self.is_valid, "key_signature": self.ks_valid},
            {"outcome": "#. Broken chains",
             "issuer_subject": self.is_broken, "key_signature": self.ks_broken},
            {"outcome": "#. Chains with unrecognized keys",
             "issuer_subject": None, "key_signature": self.ks_unrecognized},
        ]

    @property
    def position_agreement_rate(self) -> float:
        if self.position_comparisons == 0:
            return 1.0
        return self.position_agreements / self.position_comparisons


def compare_validators(corpus: ValidationCorpus, *,
                       disclosures: Optional[CrossSignDisclosures] = None
                       ) -> Table5Result:
    result = Table5Result(total=len(corpus))
    for chain in corpus.chains:
        is_result = validate_issuer_subject(chain.names,
                                            disclosures=disclosures)
        ks_result = validate_key_signature(chain.ders)

        if is_result.verdict is ISVerdict.SINGLE:
            result.is_single += 1
        elif is_result.verdict is ISVerdict.VALID:
            result.is_valid += 1
        else:
            result.is_broken += 1

        if ks_result.verdict is KSVerdict.SINGLE:
            result.ks_single += 1
        elif ks_result.verdict is KSVerdict.VALID:
            result.ks_valid += 1
        elif ks_result.verdict is KSVerdict.UNRECOGNIZED_KEY:
            result.ks_unrecognized += 1
        else:
            result.ks_broken += 1

        is_ok = is_result.verdict is not ISVerdict.BROKEN
        ks_ok = ks_result.verdict in (KSVerdict.SINGLE, KSVerdict.VALID)
        if is_ok != ks_ok or (
                ks_result.verdict is KSVerdict.UNRECOGNIZED_KEY):
            result.disagreements += 1

        # Positional agreement on chains both methods call broken.
        if (is_result.verdict is ISVerdict.BROKEN
                and ks_result.verdict is KSVerdict.BROKEN):
            result.position_comparisons += 1
            if is_result.mismatch_positions == ks_result.failure_positions:
                result.position_agreements += 1
    return result

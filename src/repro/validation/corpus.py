"""The Appendix D validation corpus: crypto-backed scanned chains.

The paper retrieved 12,676 PEM chains from servers previously seen with
non-public-associated chains (2,568 single-certificate; 9,825/9,821 valid;
283/284 broken; 3 with unrecognised keys; 1 with an ASN.1 error).  This
module builds a corpus with the same composition at any size, holding the
rare cells (3 unrecognised, 1 malformed) at their exact counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..x509.dn import DistinguishedName
from ..x509.generation import name
from ..x509.pem import CryptoChainBuilder, FaultType, PemCertificate

__all__ = ["CorpusChain", "ValidationCorpus", "build_validation_corpus"]


@dataclass(frozen=True, slots=True)
class CorpusChain:
    """One scanned chain plus its ground truth."""

    pems: Tuple[PemCertificate, ...]
    fault: FaultType
    fault_position: int = 0
    #: Ground-truth label: single / valid / name-broken / impersonated /
    #: unrecognized / malformed.
    truth: str = "valid"

    @property
    def ders(self) -> list[bytes]:
        return [p.der for p in self.pems]

    @property
    def names(self) -> list[Tuple[DistinguishedName, DistinguishedName]]:
        """(subject, issuer) pairs as a log-based pipeline would record them
        (available even when the wire DER is malformed)."""
        return [(p.subject, p.issuer) for p in self.pems]

    @property
    def is_single(self) -> bool:
        return len(self.pems) == 1


@dataclass
class ValidationCorpus:
    chains: List[CorpusChain] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.chains)

    def count(self, fault: FaultType) -> int:
        return sum(1 for c in self.chains if c.fault is fault)

    def count_truth(self, truth: str) -> int:
        return sum(1 for c in self.chains if c.truth == truth)


def _chain_names(rng: random.Random, index: int, length: int
                 ) -> list[DistinguishedName]:
    org = f"ScanOrg {index}"
    names = [name(f"host{index}.scan{rng.randint(0, 999)}.example", o=org)]
    for level in range(length - 2):
        names.append(name(f"{org} CA L{level + 1}", o=org))
    if length >= 2:
        names.append(name(f"{org} Root", o=org))
    return names


#: A pseudo-fault for chains whose delivered parent is simply the wrong
#: certificate: names do not chain and keys do not verify — the paper's
#: 283 broken chains, on which both methods agree.
SPLICED_PARENT = "spliced-parent"


def build_validation_corpus(total: int = 1268, *, seed: int | str = 0,
                            unrecognized: int = 3,
                            malformed: int = 1,
                            impersonated: int = 0) -> ValidationCorpus:
    """Build a corpus whose composition mirrors Table 5 at size ``total``.

    Proportions (single ≈ 20.3 %, broken ≈ 2.23 %) scale with ``total``;
    the ``unrecognized`` and ``malformed`` cells stay at the paper's exact
    counts by default.

    ``impersonated`` adds chains whose names chain but whose signatures do
    not (a same-name CA with the wrong key) — the failure mode Appendix D
    names as the issuer–subject method's blind spot.  The paper's corpus
    contained none; setting it non-zero drives the blind-spot ablation.
    """
    if total < unrecognized + malformed + impersonated + 4:
        raise ValueError(f"corpus size {total} too small")
    rng = random.Random(f"corpus:{seed}")
    builder = CryptoChainBuilder(key_pool_size=8)
    singles = round(total * 2568 / 12676)
    broken = max(1, round(total * 283 / 12676))
    valid = total - singles - broken - unrecognized - malformed - impersonated

    corpus = ValidationCorpus()
    index = 0

    def lengths() -> int:
        return rng.choice((2, 2, 3, 3, 4))

    for _ in range(singles):
        chain = builder.build_chain(_chain_names(rng, index, 1))
        corpus.chains.append(CorpusChain(tuple(chain), FaultType.NONE,
                                         truth="single"))
        index += 1
    for _ in range(valid):
        chain = builder.build_chain(_chain_names(rng, index, lengths()))
        corpus.chains.append(CorpusChain(tuple(chain), FaultType.NONE,
                                         truth="valid"))
        index += 1
    for _ in range(broken):
        # A server delivering the wrong intermediate: splice an unrelated
        # self-signed certificate into an otherwise valid chain.  Both
        # methods flag it, at the same pair positions.
        length = max(3, lengths())
        position = rng.randrange(1, length - 1)
        chain = list(builder.build_chain(_chain_names(rng, index, length)))
        intruder_name = name(f"Unrelated CA {index}", o=f"Elsewhere {index}")
        intruder = builder.build_chain([intruder_name])[0]
        chain[position] = intruder
        corpus.chains.append(CorpusChain(tuple(chain), FaultType.NONE,
                                         position, truth="name-broken"))
        index += 1
    for _ in range(impersonated):
        length = lengths()
        position = rng.randrange(length - 1)
        chain = builder.build_chain(_chain_names(rng, index, length),
                                    fault=FaultType.WRONG_KEY,
                                    fault_position=position)
        corpus.chains.append(CorpusChain(tuple(chain), FaultType.WRONG_KEY,
                                         position, truth="impersonated"))
        index += 1
    for _ in range(unrecognized):
        length = lengths()
        position = rng.randrange(1, length)  # damage a parent's key
        chain = builder.build_chain(_chain_names(rng, index, length),
                                    fault=FaultType.UNRECOGNIZED_KEY,
                                    fault_position=position)
        corpus.chains.append(CorpusChain(
            tuple(chain), FaultType.UNRECOGNIZED_KEY, position,
            truth="unrecognized"))
        index += 1
    for _ in range(malformed):
        length = lengths()
        position = rng.randrange(length)
        chain = builder.build_chain(_chain_names(rng, index, length),
                                    fault=FaultType.TRUNCATED_DER,
                                    fault_position=position)
        corpus.chains.append(CorpusChain(
            tuple(chain), FaultType.TRUNCATED_DER, position,
            truth="malformed"))
        index += 1
    rng.shuffle(corpus.chains)
    return corpus

"""Key–signature chain validation (Appendix D.2) with ``cryptography``.

The reference method the paper compares its issuer–subject approach
against: each certificate's signature is verified using the public key of
the next certificate in the chain.  Outcomes distinguish the failure modes
Table 5 reports separately:

* ``BROKEN`` — a signature fails to verify, *or* a certificate's DER does
  not parse (the paper's single ASN.1-error chain lands here, giving the
  284 vs 283 broken-count difference);
* ``UNRECOGNIZED_KEY`` — a public key whose algorithm the ``cryptography``
  package does not support (3 chains in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from cryptography import x509 as cx509
from cryptography.exceptions import InvalidSignature, UnsupportedAlgorithm
from cryptography.hazmat.primitives.asymmetric import ec, padding, rsa
from cryptography.hazmat.primitives.asymmetric.ec import ECDSA

__all__ = ["KSVerdict", "KSResult", "validate_key_signature"]


class KSVerdict(str, Enum):
    SINGLE = "single"
    VALID = "valid"
    BROKEN = "broken"
    UNRECOGNIZED_KEY = "unrecognized-key"


@dataclass(frozen=True, slots=True)
class KSResult:
    verdict: KSVerdict
    #: Indexes of (child, parent) pairs whose verification failed.
    failure_positions: Tuple[int, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict in (KSVerdict.SINGLE, KSVerdict.VALID)


def _verify(child: cx509.Certificate, parent_key) -> None:
    """Verify ``child``'s signature under ``parent_key`` (RSA or EC)."""
    if isinstance(parent_key, rsa.RSAPublicKey):
        parent_key.verify(child.signature, child.tbs_certificate_bytes,
                          padding.PKCS1v15(), child.signature_hash_algorithm)
    elif isinstance(parent_key, ec.EllipticCurvePublicKey):
        parent_key.verify(child.signature, child.tbs_certificate_bytes,
                          ECDSA(child.signature_hash_algorithm))
    else:  # pragma: no cover - corpus uses RSA/EC only
        raise UnsupportedAlgorithm(f"cannot verify with {type(parent_key)}")


def validate_key_signature(ders: Sequence[bytes]) -> KSResult:
    """Validate a leaf-first chain of DER blobs cryptographically."""
    if not ders:
        raise ValueError("cannot validate an empty chain")
    certificates: list[Optional[cx509.Certificate]] = []
    parse_failures: list[int] = []
    for index, der in enumerate(ders):
        try:
            certificates.append(cx509.load_der_x509_certificate(der))
        except ValueError:
            certificates.append(None)
            parse_failures.append(index)
    if len(ders) == 1:
        if parse_failures:
            return KSResult(KSVerdict.BROKEN, (0,), "ASN.1 parse error")
        return KSResult(KSVerdict.SINGLE)

    # First pass: find certificates whose own public key is unsupported.
    # A pair whose *child* carries an unsupported key cannot have its
    # signature assessed meaningfully either way, so such pairs are
    # attributed to the unrecognized-key outcome, not to breakage —
    # matching the paper's separate accounting of its 3 such chains.
    unrecognized_certs: set[int] = set()
    detail = ""
    for index, certificate in enumerate(certificates):
        if certificate is None:
            continue
        try:
            certificate.public_key()
        except UnsupportedAlgorithm as exc:
            unrecognized_certs.add(index)
            detail = detail or str(exc)

    failures: list[int] = []
    for index in range(len(ders) - 1):
        child, parent = certificates[index], certificates[index + 1]
        if child is None or parent is None:
            failures.append(index)
            detail = detail or "ASN.1 parse error"
            continue
        if index in unrecognized_certs or index + 1 in unrecognized_certs:
            continue
        try:
            parent_key = parent.public_key()
        except UnsupportedAlgorithm:  # pragma: no cover - handled above
            continue
        try:
            _verify(child, parent_key)
        except InvalidSignature:
            failures.append(index)
            detail = detail or "signature verification failed"
        except (ValueError, UnsupportedAlgorithm) as exc:
            failures.append(index)
            detail = detail or f"verification error: {exc}"
    if failures:
        return KSResult(KSVerdict.BROKEN, tuple(failures), detail)
    if unrecognized_certs:
        return KSResult(KSVerdict.UNRECOGNIZED_KEY, (), detail)
    return KSResult(KSVerdict.VALID)

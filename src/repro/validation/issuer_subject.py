"""Issuer–subject chain validation (Appendix D.1) over scanned chains.

This is the paper's log-compatible method applied to the Appendix D
corpus: walk the chain leaf-upward and check that each certificate's issuer
field matches the next certificate's subject field, recording the positions
of conflicting pairs.  Cross-sign disclosures can bridge known pairs.

The method consumes *structured name fields*, never key material — when the
same chain's DER is malformed, this validator still renders a verdict
(which is exactly how the paper's one disagreement with the key–signature
method arises).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from ..core.crosssign import CrossSignDisclosures
from ..x509.dn import DistinguishedName

__all__ = ["ISVerdict", "ISResult", "validate_issuer_subject"]


class ISVerdict(str, Enum):
    SINGLE = "single"
    VALID = "valid"
    BROKEN = "broken"


@dataclass(frozen=True, slots=True)
class ISResult:
    verdict: ISVerdict
    #: Indexes of mismatched (child, parent) pairs.
    mismatch_positions: Tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return self.verdict is not ISVerdict.BROKEN


def validate_issuer_subject(
        names: Sequence[Tuple[DistinguishedName, DistinguishedName]], *,
        disclosures: Optional[CrossSignDisclosures] = None) -> ISResult:
    """Validate a chain given its ``(subject, issuer)`` name pairs,
    leaf first.

    ``disclosures`` bridging is name-level: a pair also matches when the
    child's issuer is a disclosed cross-signed subject and the parent is one
    of its disclosed alternate issuers.
    """
    if not names:
        raise ValueError("cannot validate an empty chain")
    if len(names) == 1:
        return ISResult(ISVerdict.SINGLE)
    mismatches: list[int] = []
    for index in range(len(names) - 1):
        _child_subject, child_issuer = names[index]
        parent_subject, _parent_issuer = names[index + 1]
        if parent_subject.matches(child_issuer):
            continue
        if disclosures is not None:
            alternates = disclosures.disclosed_issuers_for(child_issuer)
            parent_key = tuple(sorted(parent_subject.normalized()))
            if parent_key in alternates:
                continue
        mismatches.append(index)
    if mismatches:
        return ISResult(ISVerdict.BROKEN, tuple(mismatches))
    return ISResult(ISVerdict.VALID)

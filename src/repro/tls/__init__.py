"""Simulated TLS: handshakes, client validation policies, connection
records, and interception middleboxes."""

from .connection import ConnectionRecord, Endpoint
from .handshake import HandshakeOutcome, HandshakeSimulator, TLSClient, TLSServer
from .interception import InterceptionMiddlebox, build_middlebox
from .messages import (
    Alert,
    AlertDescription,
    CertificateMessage,
    ClientHello,
    ServerHello,
    TLSVersion,
)
from .wire import (
    WireError,
    extract_sni,
    parse_certificate_message,
    parse_client_hello,
    serialize_certificate_message,
    serialize_client_hello,
)
from .policy import (
    BrowserPolicy,
    PermissivePolicy,
    StrictPresentedChainPolicy,
    ValidationPolicy,
    ValidationResult,
    ValidationStatus,
    signature_verifies,
)

__all__ = [
    "Alert",
    "AlertDescription",
    "BrowserPolicy",
    "CertificateMessage",
    "ClientHello",
    "ConnectionRecord",
    "Endpoint",
    "HandshakeOutcome",
    "HandshakeSimulator",
    "InterceptionMiddlebox",
    "PermissivePolicy",
    "ServerHello",
    "StrictPresentedChainPolicy",
    "TLSClient",
    "TLSServer",
    "TLSVersion",
    "ValidationPolicy",
    "ValidationResult",
    "ValidationStatus",
    "WireError",
    "build_middlebox",
    "extract_sni",
    "parse_certificate_message",
    "parse_client_hello",
    "serialize_certificate_message",
    "serialize_client_hello",
    "signature_verifies",
]

"""TLS wire encoding for the messages the monitor inspects.

Implements the byte layout of the TLS record layer and the two handshake
messages passive monitoring cares about: ClientHello (for SNI extraction —
RFC 6066 §3) and Certificate (for the chain and its sizes — RFC 5246
§7.4.2).  The border sensor uses these to pull SNI and chain sizes straight
from flow bytes, the way Zeek's TLS analyzer does.

Only the fields the pipeline consumes are modelled; vectors that the
monitor skips (cipher suites, compression, most extensions) are carried as
opaque, well-formed filler.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .messages import ClientHello, TLSVersion

__all__ = [
    "WireError",
    "serialize_client_hello",
    "parse_client_hello",
    "serialize_certificate_message",
    "parse_certificate_message",
    "extract_sni",
]

_CONTENT_HANDSHAKE = 0x16
_HS_CLIENT_HELLO = 0x01
_HS_CERTIFICATE = 0x0B
_EXT_SERVER_NAME = 0x0000

_VERSION_WIRE = {
    TLSVersion.TLS10: (3, 1),
    TLSVersion.TLS11: (3, 2),
    TLSVersion.TLS12: (3, 3),
    TLSVersion.TLS13: (3, 3),  # record layer stays 3,3 (middlebox compat)
}
_WIRE_VERSION = {(3, 1): TLSVersion.TLS10, (3, 2): TLSVersion.TLS11,
                 (3, 3): TLSVersion.TLS12}


class WireError(ValueError):
    """Raised when bytes do not decode as the expected TLS structure."""


def _record(content_type: int, version: TLSVersion, body: bytes) -> bytes:
    major, minor = _VERSION_WIRE[version]
    if len(body) > 2 ** 14 + 256:
        raise WireError(f"record body too large: {len(body)}")
    return struct.pack("!BBBH", content_type, major, minor, len(body)) + body


def _handshake(handshake_type: int, body: bytes) -> bytes:
    return struct.pack("!B", handshake_type) + len(body).to_bytes(3, "big") \
        + body


def _sni_extension(hostname: str) -> bytes:
    encoded = hostname.encode("idna" if any(ord(c) > 127 for c in hostname)
                              else "ascii")
    entry = struct.pack("!BH", 0, len(encoded)) + encoded  # type 0: DNS
    server_name_list = struct.pack("!H", len(entry)) + entry
    return struct.pack("!HH", _EXT_SERVER_NAME,
                       len(server_name_list)) + server_name_list


def serialize_client_hello(hello: ClientHello, *,
                           random_bytes: bytes = b"\x00" * 32) -> bytes:
    """Encode a ClientHello into a complete TLS record."""
    if len(random_bytes) != 32:
        raise WireError("ClientHello.random must be 32 bytes")
    major, minor = _VERSION_WIRE[hello.version]
    body = bytes([major, minor]) + random_bytes
    body += b"\x00"                       # empty session id
    body += struct.pack("!H", 4) + b"\x13\x01\x00\xff"  # minimal suites
    body += b"\x01\x00"                   # null compression
    extensions = b""
    if hello.sni:
        extensions += _sni_extension(hello.sni)
    body += struct.pack("!H", len(extensions)) + extensions
    return _record(_CONTENT_HANDSHAKE, hello.version,
                   _handshake(_HS_CLIENT_HELLO, body))


def _read_record(data: bytes, expected_type: int) -> Tuple[TLSVersion, bytes]:
    if len(data) < 5:
        raise WireError("truncated record header")
    content_type, major, minor, length = struct.unpack("!BBBH", data[:5])
    if content_type != _CONTENT_HANDSHAKE:
        raise WireError(f"unexpected content type {content_type}")
    body = data[5:5 + length]
    if len(body) < length:
        raise WireError("truncated record body")
    version = _WIRE_VERSION.get((major, minor))
    if version is None:
        raise WireError(f"unknown record version {major}.{minor}")
    if not body or body[0] != expected_type:
        raise WireError("unexpected handshake type")
    hs_length = int.from_bytes(body[1:4], "big")
    payload = body[4:4 + hs_length]
    if len(payload) < hs_length:
        raise WireError("truncated handshake body")
    return version, payload


def parse_client_hello(data: bytes) -> ClientHello:
    """Decode a ClientHello record; extracts version and SNI."""
    version, payload = _read_record(data, _HS_CLIENT_HELLO)
    offset = 2 + 32  # legacy version + random
    if len(payload) < offset + 1:
        raise WireError("truncated ClientHello")
    session_len = payload[offset]
    offset += 1 + session_len
    (suites_len,) = struct.unpack_from("!H", payload, offset)
    offset += 2 + suites_len
    compression_len = payload[offset]
    offset += 1 + compression_len
    sni: Optional[str] = None
    if offset + 2 <= len(payload):
        (ext_total,) = struct.unpack_from("!H", payload, offset)
        offset += 2
        end = offset + ext_total
        while offset + 4 <= end:
            ext_type, ext_len = struct.unpack_from("!HH", payload, offset)
            offset += 4
            if ext_type == _EXT_SERVER_NAME and ext_len >= 5:
                entry_offset = offset + 2  # skip server_name_list length
                name_type = payload[entry_offset]
                (name_len,) = struct.unpack_from("!H", payload,
                                                 entry_offset + 1)
                if name_type == 0:
                    raw = payload[entry_offset + 3:
                                  entry_offset + 3 + name_len]
                    sni = raw.decode("ascii", errors="replace")
            offset += ext_len
    return ClientHello(version=version, sni=sni)


def extract_sni(data: bytes) -> Optional[str]:
    """Best-effort SNI from flow bytes; None when absent or not TLS."""
    try:
        return parse_client_hello(data).sni
    except WireError:
        return None


def serialize_certificate_message(cert_blobs: Sequence[bytes], *,
                                  version: TLSVersion = TLSVersion.TLS12
                                  ) -> bytes:
    """Encode a Certificate handshake record from per-certificate blobs
    (real DER or canonical stand-ins — the framing is identical)."""
    entries = b""
    for blob in cert_blobs:
        entries += len(blob).to_bytes(3, "big") + blob
    body = len(entries).to_bytes(3, "big") + entries
    return _record(_CONTENT_HANDSHAKE, version,
                   _handshake(_HS_CERTIFICATE, body))


def parse_certificate_message(data: bytes) -> List[bytes]:
    """Decode a Certificate record back into per-certificate blobs."""
    _, payload = _read_record(data, _HS_CERTIFICATE)
    if len(payload) < 3:
        raise WireError("truncated certificate list")
    total = int.from_bytes(payload[:3], "big")
    entries = payload[3:3 + total]
    if len(entries) < total:
        raise WireError("truncated certificate entries")
    blobs: List[bytes] = []
    offset = 0
    while offset < total:
        if offset + 3 > total:
            raise WireError("dangling certificate length")
        length = int.from_bytes(entries[offset:offset + 3], "big")
        offset += 3
        blob = entries[offset:offset + length]
        if len(blob) < length:
            raise WireError("truncated certificate entry")
        blobs.append(blob)
        offset += length
    return blobs

"""Connection records: the monitor's view of one TLS connection.

This is the in-memory equivalent of a joined Zeek ``SSL.log`` row with its
``X509.log`` cross-references — the exact unit of analysis in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional, Sequence

from ..x509.certificate import Certificate
from .messages import TLSVersion

__all__ = ["ConnectionRecord", "Endpoint"]


@dataclass(frozen=True, slots=True)
class Endpoint:
    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclass(frozen=True, slots=True)
class ConnectionRecord:
    """One observed TLS connection.

    ``chain`` is the certificate list *as delivered* (wire order) when the
    monitor could see it; for TLS 1.3 it is empty even though the handshake
    carried certificates (§6.3 limitation, reproduced faithfully).
    """

    uid: str
    timestamp: datetime
    client: Endpoint
    server: Endpoint
    version: TLSVersion
    sni: Optional[str]
    established: bool
    chain: tuple[Certificate, ...] = field(default=())
    validation_detail: str = ""

    @property
    def has_sni(self) -> bool:
        return bool(self.sni)

    @property
    def chain_fingerprints(self) -> tuple[str, ...]:
        return tuple(cert.fingerprint for cert in self.chain)

    def chain_key(self) -> tuple[str, ...]:
        """Identity of the *delivered chain* (ordered fingerprints) — the
        unit the paper counts 731,175 of."""
        return self.chain_fingerprints

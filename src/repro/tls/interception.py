"""TLS interception middlebox simulation.

Security appliances (Zscaler, FortiGate, …) terminate the client's TLS
session, inspect the plaintext, and re-originate the connection, presenting
a *substitute* chain whose leaf is minted on the fly by the appliance's own
CA for the requested host (§3.2.1, Table 1, Appendix B).  The substitute
issuer never appears in public databases, and typically the appliance ships
a 3-certificate chain (leaf → appliance intermediate → appliance root),
which is why >80 % of interception chains in Figure 1 have length 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Optional, Sequence

from ..x509.certificate import Certificate
from ..x509.dn import DistinguishedName
from ..x509.generation import CertificateFactory, IssuingAuthority, name

__all__ = ["InterceptionCategory", "InterceptionMiddlebox"]

#: Table 1 categories.
InterceptionCategory = str
CATEGORIES: tuple[InterceptionCategory, ...] = (
    "Security & Network",
    "Business & Corporate",
    "Health & Education",
    "Government & Public Service",
    "Bank & Finance",
    "Other",
)


@dataclass
class InterceptionMiddlebox:
    """One interception issuer: a private CA that re-signs on the fly.

    Minted leaves are cached per host so repeated connections to the same
    domain reuse one substitute chain — matching the small distinct-chain /
    large connection-count ratio of real appliances.
    """

    vendor: str
    category: InterceptionCategory
    factory: CertificateFactory
    #: Number of certificates in the substitute chain (3 is typical).
    chain_depth: int = 3
    #: Some appliances present a bare self-signed substitute instead.
    single_self_signed: bool = False
    #: Others deliver only the minted leaf (distinct issuer/subject) without
    #: its issuing chain — §4.3's non-self-signed single-certificate tail.
    single_leaf_only: bool = False
    root: IssuingAuthority = field(init=False)
    issuing: IssuingAuthority = field(init=False)
    _ladder: list[IssuingAuthority] = field(default_factory=list, init=False)
    _leaf_cache: Dict[str, tuple[Certificate, ...]] = field(default_factory=dict,
                                                            init=False)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown interception category {self.category!r}")
        root_dn = name(f"{self.vendor} Root CA", o=self.vendor)
        self.root = self.factory.root(root_dn, lifetime_years=15)
        self._ladder = [self.root]
        authority = self.root
        # chain_depth counts leaf + intermediates + root.
        for level in range(max(self.chain_depth - 2, 0)):
            label = f"{self.vendor} Intermediate CA {level + 1}"
            authority = self.factory.intermediate(
                authority, name(label, o=self.vendor), path_len=None)
            self._ladder.append(authority)
        self.issuing = authority

    @property
    def issuer_names(self) -> list[DistinguishedName]:
        names = [self.root.subject]
        if self.issuing is not self.root:
            names.append(self.issuing.subject)
        return names

    def substitute_chain(self, host: str) -> tuple[Certificate, ...]:
        """The chain the appliance presents in place of the origin's."""
        cached = self._leaf_cache.get(host)
        if cached is not None:
            return cached
        # Minted certificates start at the factory epoch so they cover the
        # whole observation window (appliances re-mint on rotation).
        if self.single_self_signed:
            chain: tuple[Certificate, ...] = (
                self.factory.self_signed(name(host, o=self.vendor),
                                         lifetime_days=520,
                                         not_before=self.factory.epoch),
            )
        elif self.single_leaf_only:
            chain = (self.factory.leaf(self.issuing, name(host, o=self.vendor),
                                       dns_names=(host,), lifetime_days=520,
                                       not_before=self.factory.epoch),)
        else:
            leaf = self.factory.leaf(self.issuing, name(host, o=self.vendor),
                                     dns_names=(host,), lifetime_days=520,
                                     not_before=self.factory.epoch)
            chain = (leaf, *self._authority_chain())
        self._leaf_cache[host] = chain
        return chain

    def _authority_chain(self) -> tuple[Certificate, ...]:
        """Issuing intermediate(s) up to and including the appliance root,
        in wire order (deepest intermediate first, root last)."""
        return tuple(ia.certificate for ia in reversed(self._ladder))

    def intercept(self, original_chain: Sequence[Certificate],
                  host: str) -> tuple[Certificate, ...]:
        """What the monitor sees client-side when this appliance is inline.

        The original chain is consumed appliance-side and never reaches the
        campus border, hence never the logs — only the substitute does.
        """
        del original_chain  # inspected appliance-side; invisible to the monitor
        return self.substitute_chain(host)


def build_middlebox(vendor: str, category: InterceptionCategory, *,
                    seed: int | str = 0, chain_depth: int = 3,
                    single_self_signed: bool = False) -> InterceptionMiddlebox:
    """Convenience constructor with a deterministic per-vendor factory."""
    factory = CertificateFactory(seed=f"middlebox:{vendor}:{seed}")
    return InterceptionMiddlebox(vendor, category, factory,
                                 chain_depth=chain_depth,
                                 single_self_signed=single_self_signed)

"""Simplified TLS handshake messages.

Only the surface the measurement pipeline observes is modelled: protocol
version, SNI, the server's Certificate message, and the alert/established
outcome.  Cipher negotiation details are out of scope for the paper and
therefore for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from ..x509.certificate import Certificate

__all__ = [
    "TLSVersion",
    "ClientHello",
    "ServerHello",
    "CertificateMessage",
    "Alert",
    "AlertDescription",
]


class TLSVersion(str, Enum):
    TLS10 = "TLSv10"
    TLS11 = "TLSv11"
    TLS12 = "TLSv12"
    TLS13 = "TLSv13"

    @property
    def certificates_visible_to_monitor(self) -> bool:
        """TLS 1.3 encrypts the Certificate message, so passive monitoring
        cannot log chains (§6.3's stated limitation)."""
        return self is not TLSVersion.TLS13


class AlertDescription(str, Enum):
    CLOSE_NOTIFY = "close_notify"
    BAD_CERTIFICATE = "bad_certificate"
    UNKNOWN_CA = "unknown_ca"
    CERTIFICATE_EXPIRED = "certificate_expired"
    HANDSHAKE_FAILURE = "handshake_failure"


@dataclass(frozen=True, slots=True)
class Alert:
    fatal: bool
    description: AlertDescription


@dataclass(frozen=True, slots=True)
class ClientHello:
    version: TLSVersion = TLSVersion.TLS12
    sni: Optional[str] = None


@dataclass(frozen=True, slots=True)
class ServerHello:
    version: TLSVersion = TLSVersion.TLS12


@dataclass(frozen=True, slots=True)
class CertificateMessage:
    """The certificate_list as delivered on the wire: the server's
    end-entity certificate first, in whatever order the server was
    (mis)configured to send — preserving that order is the whole point of
    the paper's structural analysis."""

    chain: tuple[Certificate, ...] = field(default=())

    def __len__(self) -> int:
        return len(self.chain)

    @property
    def leaf(self) -> Optional[Certificate]:
        return self.chain[0] if self.chain else None

"""Simulated TLS handshakes between configured servers and policy-bearing
clients, producing :class:`~repro.tls.connection.ConnectionRecord` streams
for the monitoring tap.

The simulation is deliberately shallow on crypto (no real key exchange) and
deep on the observable surface: delivered chain order, SNI presence,
negotiated version, and whether the client's validation policy accepts the
chain — because those are the fields the paper's entire analysis runs on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Optional, Sequence

from ..x509.certificate import Certificate
from .connection import ConnectionRecord, Endpoint
from .messages import Alert, AlertDescription, CertificateMessage, ClientHello, TLSVersion
from .policy import PermissivePolicy, ValidationPolicy, ValidationStatus

__all__ = ["TLSServer", "TLSClient", "HandshakeOutcome", "HandshakeSimulator"]


@dataclass
class TLSServer:
    """A TLS endpoint serving one configured certificate chain per port."""

    ip: str
    port: int = 443
    chain: tuple[Certificate, ...] = field(default=())
    #: Highest protocol version the server negotiates.
    max_version: TLSVersion = TLSVersion.TLS12
    #: Hostname(s) this server is known by, for scanning.
    hostnames: tuple[str, ...] = ()

    def certificate_message(self) -> CertificateMessage:
        return CertificateMessage(self.chain)

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.ip, self.port)


@dataclass
class TLSClient:
    """A TLS client with a validation policy (browser, strict, permissive)."""

    ip: str
    policy: ValidationPolicy = field(default_factory=PermissivePolicy)
    version: TLSVersion = TLSVersion.TLS12
    sends_sni: bool = True


@dataclass(frozen=True, slots=True)
class HandshakeOutcome:
    record: ConnectionRecord
    alert: Optional[Alert]
    validation_status: ValidationStatus


_ALERT_FOR_STATUS = {
    ValidationStatus.EXPIRED: AlertDescription.CERTIFICATE_EXPIRED,
    ValidationStatus.UNKNOWN_CA: AlertDescription.UNKNOWN_CA,
    ValidationStatus.SELF_SIGNED: AlertDescription.UNKNOWN_CA,
    ValidationStatus.BROKEN_CHAIN: AlertDescription.BAD_CERTIFICATE,
    ValidationStatus.EMPTY_CHAIN: AlertDescription.HANDSHAKE_FAILURE,
}


class HandshakeSimulator:
    """Drives client↔server handshakes and emits monitor-view records."""

    def __init__(self, seed: int | str = 0):
        self._rng = random.Random(f"handshake:{seed}")
        self._uid_counter = 0

    def _next_uid(self) -> str:
        """Zeek-style connection UID (C + base62-ish random token)."""
        self._uid_counter += 1
        alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        token = "".join(self._rng.choice(alphabet) for _ in range(17))
        return f"C{token}"

    def connect(self, client: TLSClient, server: TLSServer, *,
                sni: Optional[str] = None,
                when: datetime,
                client_port: Optional[int] = None) -> HandshakeOutcome:
        """Run one handshake; returns the monitor-view outcome."""
        hello = ClientHello(
            version=_negotiate(client.version, server.max_version),
            sni=sni if client.sends_sni else None,
        )
        message = server.certificate_message()
        result = client.policy.validate(message.chain, at=when)
        established = result.ok
        alert: Optional[Alert] = None
        if not established:
            alert = Alert(True, _ALERT_FOR_STATUS.get(
                result.status, AlertDescription.HANDSHAKE_FAILURE))
        visible_chain: tuple[Certificate, ...] = message.chain
        if not hello.version.certificates_visible_to_monitor:
            visible_chain = ()
        record = ConnectionRecord(
            uid=self._next_uid(),
            timestamp=when,
            client=Endpoint(client.ip, client_port or self._rng.randint(32768, 60999)),
            server=server.endpoint,
            version=hello.version,
            sni=hello.sni,
            established=established,
            chain=visible_chain,
            validation_detail=result.detail,
        )
        return HandshakeOutcome(record, alert, result.status)


def _negotiate(client_version: TLSVersion, server_version: TLSVersion) -> TLSVersion:
    order = [TLSVersion.TLS10, TLSVersion.TLS11, TLSVersion.TLS12, TLSVersion.TLS13]
    return min(client_version, server_version, key=order.index)

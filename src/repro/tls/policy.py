"""Client-side certificate chain validation policies.

Section 5 of the paper observes that *the same chain* validates differently
across applications: Chrome succeeds by completing the chain from its own
trust store, while OpenSSL-style validation over the presented chain fails
when unnecessary certificates break the presented sequence.  These policies
model exactly that divergence:

* :class:`BrowserPolicy` — path building from the leaf using any presented
  certificate plus locally known intermediates/anchors; unnecessary
  certificates are simply ignored.
* :class:`StrictPresentedChainPolicy` — the presented order must itself
  form the trust path (leaf → … → anchor); any stray certificate breaks it.
* :class:`PermissivePolicy` — accepts anything (IoT-ish clients and tools
  invoked with verification disabled), which is why the paper still sees
  ~56 % established connections on completely broken chains.

Because the pipeline is structured-record based, "signature verification"
is simulated from generator ground truth: a child verifies under a parent
when the child records the parent's signing key id (see
``repro.x509.generation``); it degrades to name chaining when key ids are
absent, exactly mirroring what a log-based observer can know.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from datetime import datetime
from enum import Enum
from typing import Optional, Sequence

from ..truststores.registry import PublicDBRegistry
from ..x509.certificate import Certificate
from ..x509.revocation import RevocationChecker, RevocationStatus

__all__ = [
    "ValidationStatus",
    "ValidationResult",
    "ValidationPolicy",
    "BrowserPolicy",
    "StrictPresentedChainPolicy",
    "PermissivePolicy",
    "signature_verifies",
    "RevocationChecker",
    "RevocationStatus",
]

_MAX_PATH_LENGTH = 16


class ValidationStatus(str, Enum):
    OK = "ok"
    EMPTY_CHAIN = "empty_chain"
    EXPIRED = "expired"
    UNKNOWN_CA = "unknown_ca"
    BROKEN_CHAIN = "broken_chain"
    SELF_SIGNED = "self_signed"
    REVOKED = "revoked"


@dataclass(frozen=True, slots=True)
class ValidationResult:
    status: ValidationStatus
    #: The trust path actually used, leaf first (empty on failure).
    path: tuple[Certificate, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ValidationStatus.OK


def signature_verifies(child: Certificate, parent: Certificate) -> bool:
    """Simulated cryptographic check: did ``parent``'s key sign ``child``?

    Uses generator ground truth (signing key ids) when available; otherwise
    falls back to RFC 5280 name chaining, the only signal in log data.
    """
    parent_kid = (parent.extensions.subject_key_id.key_id
                  if parent.extensions.subject_key_id else None)
    if child.signing_key_id is not None and parent_kid is not None:
        return child.signing_key_id == parent_kid
    return parent.issued(child)


class ValidationPolicy(ABC):
    """A client's procedure for deciding whether to trust a presented chain."""

    name: str = "abstract"

    @abstractmethod
    def validate(self, presented: Sequence[Certificate], *,
                 at: datetime) -> ValidationResult:
        """Validate a presented (wire-order, leaf-first) chain at time ``at``."""


class PermissivePolicy(ValidationPolicy):
    """Accepts any non-empty chain without inspection."""

    name = "permissive"

    def validate(self, presented: Sequence[Certificate], *,
                 at: datetime) -> ValidationResult:
        if not presented:
            return ValidationResult(ValidationStatus.EMPTY_CHAIN)
        return ValidationResult(ValidationStatus.OK, tuple(presented[:1]),
                                "accepted without verification")


class BrowserPolicy(ValidationPolicy):
    """Chrome-style validation: build *some* path from the leaf to a local
    trust anchor, drawing on presented certificates and the local store.

    The first presented certificate is taken as the server certificate
    (RFC 8446 §4.4.2); everything else is merely candidate path material.
    """

    name = "browser"

    def __init__(self, registry: PublicDBRegistry, *,
                 extra_anchors: Sequence[Certificate] = (),
                 check_validity_period: bool = True,
                 revocation: Optional[RevocationChecker] = None):
        self.registry = registry
        self._extra_anchor_keys = {
            tuple(sorted(a.subject.normalized())) for a in extra_anchors
        }
        self._extra_anchors = list(extra_anchors)
        self.check_validity_period = check_validity_period
        #: Browsers soft-fail: UNKNOWN status is tolerated, REVOKED is not.
        self.revocation = revocation

    def _revocation_verdict(self, path: Sequence[Certificate],
                            at: datetime) -> Optional[ValidationResult]:
        if self.revocation is None:
            return None
        revoked = self.revocation.any_revoked(path, at=at)
        if revoked is not None:
            return ValidationResult(
                ValidationStatus.REVOKED, (),
                f"{revoked.short_name()!r} is revoked")
        return None

    def _is_anchor(self, certificate: Certificate) -> bool:
        if self.registry.is_trust_anchor_name(certificate.subject):
            return True
        return tuple(sorted(certificate.subject.normalized())) in self._extra_anchor_keys

    def _anchor_for_issuer(self, certificate: Certificate) -> Optional[Certificate]:
        """A store anchor whose subject matches this certificate's issuer."""
        for store in self.registry.stores:
            for entry in store.anchors_for_subject(certificate.issuer):
                return entry.certificate
        for anchor in self._extra_anchors:
            if anchor.issued(certificate):
                return anchor
        return None

    def validate(self, presented: Sequence[Certificate], *,
                 at: datetime) -> ValidationResult:
        if not presented:
            return ValidationResult(ValidationStatus.EMPTY_CHAIN)
        leaf = presented[0]
        if self.check_validity_period and not leaf.is_valid_at(at):
            return ValidationResult(ValidationStatus.EXPIRED, (),
                                    "leaf outside validity period")
        path: list[Certificate] = [leaf]
        current = leaf
        seen = {leaf.fingerprint}
        while len(path) < _MAX_PATH_LENGTH:
            if self._is_anchor(current):
                verdict = self._revocation_verdict(path, at)
                if verdict is not None:
                    return verdict
                return ValidationResult(ValidationStatus.OK, tuple(path))
            anchor = self._anchor_for_issuer(current)
            if anchor is not None and signature_verifies(current, anchor):
                path.append(anchor)
                verdict = self._revocation_verdict(path, at)
                if verdict is not None:
                    return verdict
                return ValidationResult(ValidationStatus.OK, tuple(path))
            parent = self._find_parent(current, presented, seen, at)
            if parent is None:
                if current.is_self_signed:
                    return ValidationResult(ValidationStatus.SELF_SIGNED, (),
                                            "self-signed, not in trust store")
                return ValidationResult(
                    ValidationStatus.UNKNOWN_CA, (),
                    f"no issuer found for {current.short_name()!r}")
            seen.add(parent.fingerprint)
            path.append(parent)
            current = parent
        return ValidationResult(ValidationStatus.BROKEN_CHAIN, (),
                                "path length limit exceeded")

    def _find_parent(self, child: Certificate, presented: Sequence[Certificate],
                     seen: set[str], at: datetime) -> Optional[Certificate]:
        for candidate in presented:
            if candidate.fingerprint in seen:
                continue
            if candidate.issued(child) and signature_verifies(child, candidate):
                if self.check_validity_period and not candidate.is_valid_at(at):
                    continue
                return candidate
        return None


class StrictPresentedChainPolicy(ValidationPolicy):
    """OpenSSL-like validation over the presented sequence only.

    Requires every adjacent pair to chain (issuer–subject *and* signature)
    and the final certificate to be, or be issued by, a trusted anchor.
    A single unnecessary certificate anywhere in the sequence breaks it —
    the failure mode behind the paper's §4.2/§5 establishment-rate gap.
    """

    name = "strict"

    def __init__(self, registry: PublicDBRegistry, *,
                 extra_anchors: Sequence[Certificate] = (),
                 check_validity_period: bool = True,
                 revocation: Optional[RevocationChecker] = None):
        self.registry = registry
        self._extra_anchor_keys = {
            tuple(sorted(a.subject.normalized())) for a in extra_anchors
        }
        self.check_validity_period = check_validity_period
        self.revocation = revocation

    def _anchored(self, certificate: Certificate) -> bool:
        for dn in (certificate.subject, certificate.issuer):
            if self.registry.is_trust_anchor_name(dn):
                return True
            if tuple(sorted(dn.normalized())) in self._extra_anchor_keys:
                return True
        return False

    def validate(self, presented: Sequence[Certificate], *,
                 at: datetime) -> ValidationResult:
        if not presented:
            return ValidationResult(ValidationStatus.EMPTY_CHAIN)
        if self.check_validity_period:
            for certificate in presented:
                if not certificate.is_valid_at(at):
                    return ValidationResult(
                        ValidationStatus.EXPIRED, (),
                        f"{certificate.short_name()!r} outside validity period")
        for child, parent in zip(presented, presented[1:]):
            if not (parent.issued(child) and signature_verifies(child, parent)):
                return ValidationResult(
                    ValidationStatus.BROKEN_CHAIN, (),
                    f"{parent.short_name()!r} did not issue {child.short_name()!r}")
        last = presented[-1]
        if len(presented) == 1 and last.is_self_signed and not self._anchored(last):
            return ValidationResult(ValidationStatus.SELF_SIGNED, (),
                                    "single self-signed certificate")
        if not self._anchored(last):
            return ValidationResult(ValidationStatus.UNKNOWN_CA, (),
                                    "chain does not terminate at a trusted anchor")
        if self.revocation is not None:
            revoked = self.revocation.any_revoked(presented, at=at)
            if revoked is not None:
                return ValidationResult(
                    ValidationStatus.REVOKED, (),
                    f"{revoked.short_name()!r} is revoked")
        return ValidationResult(ValidationStatus.OK, tuple(presented))

"""Pipeline throughput benchmarks: log I/O, joining, and aggregation.

Not tied to a paper artifact — these measure whether the tooling scales to
operator-sized logs (the paper processed 259 M connections; the library
must make that plausible on commodity hardware).
"""

from __future__ import annotations

import io

import pytest

from repro.core.chain import aggregate_chains
from repro.zeek.format import ZeekLogReader, ZeekLogWriter
from repro.zeek.records import SSLRecord
from repro.zeek.tap import join_logs


def test_zeek_log_write_throughput(benchmark, dataset):
    rows = dataset.tap.ssl_rows()

    def write_all():
        buffer = io.StringIO()
        with ZeekLogWriter(buffer, "ssl", SSLRecord.FIELDS,
                           SSLRecord.TYPES) as writer:
            for row in rows:
                writer.write_row(row)
        return buffer

    buffer = benchmark.pedantic(write_all, rounds=3, iterations=1)
    assert buffer.getvalue().count("\n") > len(rows)

    rows_per_second = len(rows) / benchmark.stats["mean"]
    # Operator-scale sanity: at least 50k rows/s on commodity hardware.
    assert rows_per_second > 50_000


def test_zeek_log_read_throughput(benchmark, dataset):
    buffer = io.StringIO()
    with ZeekLogWriter(buffer, "ssl", SSLRecord.FIELDS,
                       SSLRecord.TYPES) as writer:
        for row in dataset.tap.ssl_rows():
            writer.write_row(row)
    text = buffer.getvalue()

    def read_all():
        return list(ZeekLogReader(io.StringIO(text)))

    rows = benchmark.pedantic(read_all, rounds=3, iterations=1)
    assert len(rows) == len(dataset.ssl_records)
    rows_per_second = len(rows) / benchmark.stats["mean"]
    assert rows_per_second > 30_000


def test_join_and_aggregate_throughput(benchmark, dataset):
    def join_aggregate():
        joined = join_logs(dataset.ssl_records, dataset.x509_records)
        return aggregate_chains(joined)

    chains = benchmark.pedantic(join_aggregate, rounds=3, iterations=1)
    assert len(chains) > 1000
    connections_per_second = len(dataset.ssl_records) / benchmark.stats["mean"]
    # The paper's year of traffic (259 M conns with visible chains) should
    # be joinable in hours, not weeks: require >= 20k conns/s here.
    assert connections_per_second > 20_000

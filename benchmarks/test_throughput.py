"""Pipeline throughput benchmarks: log I/O, joining, and aggregation.

Not tied to a paper artifact — these measure whether the tooling scales to
operator-sized logs (the paper processed 259 M connections; the library
must make that plausible on commodity hardware).
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.chain import aggregate_chains
from repro.obs import instruments
from repro.obs.metrics import get_registry
from repro.x509.dn import _PARSE_CACHE
from repro.zeek.format import ZeekLogReader, ZeekLogWriter
from repro.zeek.records import SSLRecord
from repro.zeek.tap import _RECONSTRUCT_CACHE, join_logs


def test_zeek_log_write_throughput(benchmark, dataset):
    rows = dataset.tap.ssl_rows()

    def write_all():
        buffer = io.StringIO()
        with ZeekLogWriter(buffer, "ssl", SSLRecord.FIELDS,
                           SSLRecord.TYPES) as writer:
            for row in rows:
                writer.write_row(row)
        return buffer

    buffer = benchmark.pedantic(write_all, rounds=3, iterations=1)
    assert buffer.getvalue().count("\n") > len(rows)

    rows_per_second = len(rows) / benchmark.stats["mean"]
    # Operator-scale sanity: at least 50k rows/s on commodity hardware.
    assert rows_per_second > 50_000


def test_zeek_log_read_throughput(benchmark, dataset):
    buffer = io.StringIO()
    with ZeekLogWriter(buffer, "ssl", SSLRecord.FIELDS,
                       SSLRecord.TYPES) as writer:
        for row in dataset.tap.ssl_rows():
            writer.write_row(row)
    text = buffer.getvalue()

    def read_all():
        return ZeekLogReader(io.StringIO(text)).read_all()

    rows = benchmark.pedantic(read_all, rounds=3, iterations=1)
    assert len(rows) == len(dataset.ssl_records)
    rows_per_second = len(rows) / benchmark.stats["mean"]
    # The compiled-codec floor is twice the original reader's 30k bar.
    assert rows_per_second > 60_000

    # Same-run comparison against the legacy per-line interpreter: the
    # compiled reader must be strictly faster (typically 1.5-1.7x end to
    # end; the gate leaves room for noisy shared runners).
    legacy_best = min(
        _timed(lambda: list(ZeekLogReader(io.StringIO(text),
                                          compiled=False)))
        for _ in range(3))
    compiled_best = min(_timed(read_all) for _ in range(3))
    assert legacy_best / compiled_best > 1.2


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_join_and_aggregate_throughput(benchmark, dataset):
    _PARSE_CACHE.clear()
    _RECONSTRUCT_CACHE.clear()
    get_registry().reset()

    def join_aggregate():
        joined = join_logs(dataset.ssl_records, dataset.x509_records)
        return aggregate_chains(joined)

    chains = benchmark.pedantic(join_aggregate, rounds=3, iterations=1)
    assert len(chains) > 1000
    connections_per_second = len(dataset.ssl_records) / benchmark.stats["mean"]
    # The paper's year of traffic (259 M conns with visible chains) should
    # be joinable in hours, not weeks: require >= 20k conns/s here.
    assert connections_per_second > 20_000

    # The DN-parse memo must be earning its keep: subjects are unique but
    # issuer DNs repeat across the corpus, so roughly half of all parses
    # hit (structurally ~0.5; gate at 0.4).
    hits = instruments.DN_PARSE_CACHE.value(result="hit")
    misses = instruments.DN_PARSE_CACHE.value(result="miss")
    assert hits + misses > 0
    assert hits / (hits + misses) >= 0.4
    # Rounds 2-3 reconstruct every certificate straight from the memo.
    assert instruments.CERT_RECONSTRUCT_CACHE.value(result="hit") > 0

"""Shared benchmark fixtures.

One default-scale campus dataset is built per session and shared by every
benchmark; each benchmark times its experiment's *analysis* stage (the
paper's pipeline), not the workload generation, and writes its rendered
paper-vs-measured table under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.campus.dataset import cached_campus_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmarks run at the calibrated default scale unless overridden.
BENCH_SEED = os.environ.get("REPRO_BENCH_SEED", "0")
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def dataset():
    return cached_campus_dataset(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def analysis(dataset):
    """The analyzed dataset (Figure 2 pipeline output), shared."""
    return dataset.analyze()


def record_result(result) -> None:
    """Persist an experiment's rendered table for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.exp_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.rendered + "\n")


@pytest.fixture()
def record():
    return record_result

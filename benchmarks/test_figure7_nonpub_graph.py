"""Figure 7 / Appendix I — complex PKI structures in non-public-only
chains."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.core.structures import (
    build_issuance_graph,
    complex_intermediates,
    complex_subgraph,
)
from repro.experiments import run_experiment


def test_figure7_nonpub_graph(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.NON_PUBLIC_ONLY)

    def build():
        graph = build_issuance_graph(chains)
        return graph, complex_intermediates(graph)

    graph, complex_nodes = benchmark.pedantic(build, rounds=3, iterations=1)

    exp = run_experiment("figure7", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # The two mesh organisations seeded by the generator produce hub
    # intermediates linked to >= 3 other intermediates.
    assert len(complex_nodes) >= 2
    for node in complex_nodes:
        assert graph.nodes[node]["role"] == "intermediate"
        neighbors = set(graph.predecessors(node)) | set(graph.successors(node))
        inter_neighbors = [n for n in neighbors
                           if graph.nodes[n]["role"] == "intermediate"]
        assert len(inter_neighbors) >= 3
    # The figure's subgraph contains roots and intermediates.
    sub = complex_subgraph(graph)
    roles = {sub.nodes[n]["role"] for n in sub}
    assert "intermediate" in roles and "root" in roles

"""Table 2 — chain category statistics (full Figure 2 pipeline timing)."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.experiments import run_experiment


def test_table2_categories(benchmark, dataset, record):
    def full_pipeline():
        return dataset.analyzer().analyze_connections(dataset.joined())

    result = benchmark.pedantic(full_pipeline, rounds=3, iterations=1)

    exp = run_experiment("table2", dataset)
    record(exp)
    print("\n" + exp.rendered)

    cat = result.categorized
    # The hybrid population is unscaled: 321 chains exactly, like the paper.
    assert cat.chain_count(ChainCategory.HYBRID) == 321
    # Relative ordering of the scaled populations matches Table 2:
    # public > non-public-only > interception > hybrid (chain counts).
    assert (cat.chain_count(ChainCategory.PUBLIC_ONLY)
            > cat.chain_count(ChainCategory.NON_PUBLIC_ONLY)
            > cat.chain_count(ChainCategory.INTERCEPTION)
            > cat.chain_count(ChainCategory.HYBRID))
    # Non-public categories carry far more connections per chain than
    # public ones (216M vs hybrid's 78K in the paper).
    assert (cat.connection_count(ChainCategory.NON_PUBLIC_ONLY)
            > cat.connection_count(ChainCategory.HYBRID))
    # Every category observed clients.
    for category in ChainCategory:
        assert cat.client_ip_count(category) > 0
    # De-scaled chain shares land on the paper's percentages.
    from repro.campus.profiles import PAPER
    shares = exp.measured["descaled_shares"]
    assert abs(shares["non-public-db-only"]
               - PAPER.nonpub_chain_share_pct) < 2.5
    assert abs(shares["tls-interception"]
               - PAPER.interception_chain_share_pct) < 2.5
    assert shares["hybrid"] < 0.1

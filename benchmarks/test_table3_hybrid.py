"""Table 3 — hybrid chain taxonomy and establishment rates."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.hybrid import HybridAnalyzer, HybridCategory
from repro.experiments import run_experiment


def test_table3_hybrid(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)

    def analyze_hybrid():
        return HybridAnalyzer(analysis.classifier,
                              dataset.disclosures).analyze(chains)

    report = benchmark.pedantic(analyze_hybrid, rounds=3, iterations=1)

    exp = run_experiment("table3", dataset)
    record(exp)
    print("\n" + exp.rendered)

    rows = {(r["category"], r["subcategory"]): r["chains"]
            for r in report.table3_rows()}
    assert rows[("(1) Chain is a complete matched path",
                 "Non-pub. chained to Pub.")] == PAPER.hybrid_nonpub_to_pub
    assert rows[("(1) Chain is a complete matched path",
                 "Pub. chained to Prv.")] == PAPER.hybrid_pub_to_private
    assert rows[("(2) Chain contains a complete matched path",
                 "-")] == PAPER.hybrid_contains_complete
    assert rows[("(3) No complete matched path",
                 "-")] == PAPER.hybrid_no_path
    assert rows[("Total", "")] == PAPER.hybrid_chains

    complete = report.establishment_rate(HybridCategory.COMPLETE_PATH_ONLY)
    contains = report.establishment_rate(HybridCategory.CONTAINS_COMPLETE_PATH)
    no_path = report.establishment_rate(HybridCategory.NO_COMPLETE_PATH)
    # The paper's ordering and rough levels: 97.69 > 92.04 > 57.42.
    assert complete > contains > no_path
    assert abs(complete - PAPER.complete_establish_pct) < 3.0
    assert abs(contains - PAPER.contains_establish_pct) < 4.0
    assert abs(no_path - PAPER.no_path_establish_pct) < 6.0

"""§5 — the November-2024 revisit of hybrid and non-public servers."""

from __future__ import annotations

import pytest

from repro.campus.profiles import PAPER
from repro.experiments import run_experiment
from repro.scan import evolve_fleet, run_revisit


@pytest.fixture(scope="module")
def fleet(dataset):
    return evolve_fleet(dataset, seed=dataset.seed)


def test_section5_revisit(benchmark, dataset, fleet, record):
    def revisit():
        return run_revisit(dataset, seed=dataset.seed, fleet=fleet)

    report = benchmark.pedantic(revisit, rounds=3, iterations=1)

    exp = run_experiment("section5", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # Reachability near the paper's 270/321.
    assert abs(report.hybrid_reachable_pct
               - PAPER.revisit_hybrid_reachable_pct) < 3.0
    # The dominant outcome is migration to public-DB issuers, mostly LE.
    assert report.hybrid_to_public > report.hybrid_still_hybrid
    assert (report.hybrid_to_public_lets_encrypt
            > report.hybrid_to_public * 0.6)
    # The small cells hold: 4 to non-public; 9/3 still-hybrid complete.
    assert report.hybrid_to_nonpub == PAPER.revisit_hybrid_to_nonpub
    assert report.still_complete_clean == \
        PAPER.revisit_still_hybrid_complete_clean
    assert report.still_complete_unnecessary == \
        PAPER.revisit_still_hybrid_complete_unnecessary

    # The Chrome-vs-OpenSSL divergence: browser validates every
    # complete-with-unnecessary chain, strict validation rejects them all.
    assert report.divergent_chains >= 1
    assert report.divergent_browser_ok == report.divergent_chains
    assert report.divergent_strict_ok == 0

    # Non-public side: everyone stays non-public; most now deliver
    # multi-certificate chains, overwhelmingly complete matched paths.
    assert report.nonpub_still_nonpub == report.nonpub_scanned
    assert abs(report.nonpub_now_multi_pct
               - PAPER.revisit_nonpub_now_multi_pct) < 12.0
    assert report.nonpub_multi_complete_pct > 93.0
    shares = report.prev_state_shares()
    # Previously single self-signed servers dominate the converts.
    assert shares["prev_single_self_signed_pct"] > shares["prev_multi_pct"]

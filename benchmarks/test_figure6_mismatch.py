"""Figure 6 / Appendix G — mismatch-ratio distribution of no-path chains."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.hybrid import HybridAnalyzer
from repro.experiments import run_experiment


def test_figure6_mismatch(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)
    analyzer = HybridAnalyzer(analysis.classifier, dataset.disclosures)

    def histogram():
        report = analyzer.analyze(chains)
        return report.figure6_histogram(), report.high_mismatch_share(0.5)

    hist, high_share = benchmark.pedantic(histogram, rounds=3, iterations=1)

    exp = run_experiment("figure6", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # All 215 no-path chains are binned.
    assert sum(count for _, count in hist) == PAPER.hybrid_no_path
    # Ratios span the paper's reported 0.1–1.0 range.
    non_empty = [upper for upper, count in hist if count]
    assert min(non_empty) <= 0.4
    assert max(non_empty) == 1.0
    # 56.74 % of chains sit at ratio >= 0.5 in the paper.
    assert abs(high_share - PAPER.no_path_high_mismatch_share_pct) < 15.0

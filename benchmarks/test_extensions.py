"""Extension experiments: §6.1 overhead, §6.3 survey, issuer statistics."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.core.issuers import issuer_statistics
from repro.core.overhead import estimate_overhead
from repro.experiments import run_experiment
from repro.scan import run_survey


def test_section6_overhead(benchmark, dataset, analysis, record):
    hybrid = analysis.categorized.chains(ChainCategory.HYBRID)

    def estimate():
        return estimate_overhead(hybrid, disclosures=dataset.disclosures)

    report = benchmark.pedantic(estimate, rounds=3, iterations=1)

    exp = run_experiment("section6-overhead", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # Every contains-complete chain (plus none of the clean/no-path ones)
    # pays the unnecessary-certificate cost.
    assert report.chains_with_unnecessary == 70
    assert report.total_wasted_bytes > 0
    # The heavy appended-root servers overflow the initial congestion
    # window, costing their connections an extra round trip.
    assert report.extra_round_trips > 0
    # A realistic per-handshake cost: roughly one to a few certificates.
    assert 500 < report.wasted_bytes_per_affected_handshake < 20_000


def test_extension_survey(benchmark, dataset, record):
    def survey():
        return run_survey(dataset, seed=dataset.seed)

    report = benchmark.pedantic(survey, rounds=2, iterations=1)

    exp = run_experiment("extension-survey", dataset)
    record(exp)
    print("\n" + exp.rendered)

    assert report.endpoints == len(dataset.specs)
    flat = report.share_by_mix()
    weighted = report.share_by_mix(weighted=True)
    # Hybrid chains are rare by endpoint count but the usage weighting
    # shifts every share (the §6.3 motivation).
    assert flat["hybrid"] < 20.0
    drift = sum(abs(flat.get(m, 0) - weighted.get(m, 0))
                for m in set(flat) | set(weighted))
    assert drift > 3.0


def test_extension_issuers(benchmark, dataset, analysis, record):
    nonpub = analysis.categorized.chains(ChainCategory.NON_PUBLIC_ONLY)

    def pivot():
        return issuer_statistics(nonpub, analysis.classifier, leaf_only=True)

    stats = benchmark.pedantic(pivot, rounds=3, iterations=1)

    exp = run_experiment("extension-issuers", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # The non-public issuer world is extremely fragmented: almost one
    # distinct issuer per chain (the self-signed long tail).
    assert len(stats) > len(nonpub) * 0.5
    measured = exp.measured
    assert measured["non-public-db-only"]["hhi"] < 0.05
    # Interception is more concentrated: 80 vendors cover everything.
    assert measured["tls-interception"]["hhi"] > \
        measured["non-public-db-only"]["hhi"]


def test_extension_multichain(benchmark, dataset, analysis, record):
    from repro.core.categorization import ChainCategory
    from repro.core.serverchains import (
        ChainChangeKind,
        analyze_multi_chain_servers,
    )
    hybrid = analysis.categorized.chains(ChainCategory.HYBRID)

    def analyze():
        return analyze_multi_chain_servers(hybrid,
                                           disclosures=dataset.disclosures)

    report = benchmark.pedantic(analyze, rounds=3, iterations=1)

    exp = run_experiment("extension-multichain", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # §4.2's finding, recovered from logs: 19 multi-chain servers whose
    # changes split exactly into the paper's two factors.
    assert report.multi_chain_servers == 19
    counts = report.change_counts()
    assert counts.get(ChainChangeKind.LEAF_REPLACEMENT, 0) == 9
    assert counts.get(ChainChangeKind.DIFFERENT_UNNECESSARY, 0) == 10
    assert counts.get(ChainChangeKind.RESTRUCTURED, 0) == 0


def test_extension_timeline(benchmark, dataset, analysis, record):
    from repro.core.timeline import monthly_activity
    chains = list(analysis.chains.values())

    def activity():
        return monthly_activity(chains)

    buckets = benchmark.pedantic(activity, rounds=3, iterations=1)

    exp = run_experiment("extension-timeline", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # The full 12-month window is covered end to end.
    assert buckets[0].label == "2020-09"
    assert buckets[-1].label == "2021-08"
    assert len(buckets) == 12
    # Most chains persist (long-lived services dominate the population).
    assert max(b.active_chains for b in buckets) > len(chains) * 0.5
    assert sum(b.new_chains for b in buckets) == len(
        [c for c in chains if c.usage.first_seen is not None])

"""Figure 1 — chain length CDFs per category."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.lengths import length_distributions
from repro.experiments import run_experiment


def test_figure1_lengths(benchmark, dataset, analysis, record):
    def distributions():
        return length_distributions(analysis.categorized)

    dists = benchmark.pedantic(distributions, rounds=5, iterations=1)

    exp = run_experiment("figure1", dataset)
    record(exp)
    print("\n" + exp.rendered)

    public = dists[ChainCategory.PUBLIC_ONLY]
    nonpub = dists[ChainCategory.NON_PUBLIC_ONLY]
    hybrid = dists[ChainCategory.HYBRID]
    interception = dists[ChainCategory.INTERCEPTION]

    # Paper shapes: >60 % of public chains advertise length 2 (root
    # omitted); ~80 % of non-public chains are single; >80 % of
    # interception chains have 3 certificates; hybrid has no dominant
    # length.
    assert public.fraction_at(2) > 0.55
    assert public.dominant_length() == 2
    assert abs(nonpub.fraction_at(1) - PAPER.nonpub_len1_share_pct / 100) < 0.05
    assert interception.fraction_at(3) > 0.70
    assert interception.dominant_length() == 3
    dominant = hybrid.dominant_length()
    assert dominant is not None
    assert hybrid.fraction_at(dominant) < 0.50

    # The three monster chains are excluded by the paper's rule.
    assert nonpub.max_length() <= 40
    assert exp.measured["excluded"] == sorted(PAPER.outlier_lengths,
                                              reverse=True)

    # CDFs are monotone and end at 1.
    for dist in dists.values():
        fractions = [f for _, f in dist.cdf()]
        assert fractions == sorted(fractions)
        if fractions:
            assert abs(fractions[-1] - 1.0) < 1e-9

"""§4.3 — single-certificate chains and the DGA cluster."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.dga import DGADetector
from repro.experiments import run_experiment


def test_section43_single(benchmark, dataset, analysis, record):
    nonpub_chains = analysis.categorized.chains(ChainCategory.NON_PUBLIC_ONLY)

    def single_and_dga():
        stats = analysis.single_cert_stats(ChainCategory.NON_PUBLIC_ONLY)
        clusters = DGADetector().detect(nonpub_chains)
        return stats, clusters

    stats, clusters = benchmark.pedantic(single_and_dga, rounds=3,
                                         iterations=1)

    exp = run_experiment("section4.3", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # 78.10 % of non-public chains are single-certificate; 94.19 % of
    # those are self-signed; 86.70 % of their connections lack SNI.
    assert abs(stats.share_of_category - PAPER.nonpub_len1_share_pct) < 5.0
    assert abs(stats.self_signed_pct
               - PAPER.nonpub_single_self_signed_pct) < 5.0
    assert abs(stats.no_sni_connection_pct
               - PAPER.nonpub_single_no_sni_pct) < 8.0

    # Interception singles: a minority share, overwhelmingly self-signed.
    intercept = analysis.single_cert_stats(ChainCategory.INTERCEPTION)
    assert intercept.share_of_category < 30.0
    assert intercept.self_signed_pct > 80.0

    # Exactly one DGA cluster with the paper's template and validity range.
    assert len(clusters) == 1
    cluster = clusters[0]
    assert cluster.template == "www.<rand>.com"
    low, high = cluster.validity_range_days()
    assert low >= PAPER.dga_validity_days[0]
    assert high <= PAPER.dga_validity_days[1]
    assert cluster.client_ips >= 1

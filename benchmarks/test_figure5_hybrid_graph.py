"""Figure 5 — certificate co-occurrence graph of hybrid chains."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.core.structures import build_cooccurrence_graph, summarize_graph
from repro.experiments import run_experiment


def test_figure5_hybrid_graph(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)

    def build():
        graph = build_cooccurrence_graph(chains, analysis.classifier)
        return graph, summarize_graph(graph)

    graph, summary = benchmark.pedantic(build, rounds=3, iterations=1)

    exp = run_experiment("figure5", dataset)
    record(exp)
    print("\n" + exp.rendered)

    classes = dict(summary.nodes_by_class)
    # Both node colours present (public-DB blue / non-public-DB red).
    assert classes.get("public-db", 0) > 0
    assert classes.get("non-public-db", 0) > 0
    roles = dict(summary.nodes_by_role)
    # All three node sizes: leaves, intermediates (the broken-chain
    # ladders make these the most numerous), and roots.
    assert roles.get("leaf", 0) > 0
    assert roles.get("intermediate", 0) > 0
    assert roles.get("root", 0) > 0
    # Shared public intermediates create hubs: max degree far above the
    # within-chain clique size.
    assert summary.max_degree > 10
    # Chains sharing no certificates form separate components; hub sharing
    # keeps the count well below the number of chains.
    assert 1 <= summary.components < len(chains)

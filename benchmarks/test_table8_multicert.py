"""Table 8 — matched paths in multi-certificate non-public/interception
chains."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.experiments import run_experiment


def test_table8_multicert(benchmark, dataset, analysis, record):
    def matched_path_stats():
        return (analysis.multicert_path_stats(ChainCategory.NON_PUBLIC_ONLY),
                analysis.multicert_path_stats(ChainCategory.INTERCEPTION))

    nonpub, interception = benchmark.pedantic(matched_path_stats, rounds=3,
                                              iterations=1)

    exp = run_experiment("table8", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # The paper's headline: the overwhelming majority of multi-certificate
    # chains are complete matched paths (99.76 % / 98.94 %).
    assert nonpub.is_matched_path_pct > 95.0
    assert interception.is_matched_path_pct > 95.0
    # Both small breakage tails exist.
    assert nonpub.contains_matched_path + nonpub.no_matched_path >= 1
    assert interception.no_matched_path >= 1
    # Population sanity: counts add up.
    assert (nonpub.is_matched_path + nonpub.contains_matched_path
            + nonpub.no_matched_path) == nonpub.chains
    assert (interception.is_matched_path + interception.contains_matched_path
            + interception.no_matched_path) == interception.chains

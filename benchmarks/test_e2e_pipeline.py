"""End-to-end wall clock: generate → ingest → analyze, per jobs value.

The closed loop the generation engine enables: stage 0 writes shard
logs the ingestion engine discovers directly, whose merged chain map the
enrichment engine analyzes.  This benchmark times each stage and the
whole loop at ``jobs`` 1 and 4 and persists the numbers to
``BENCH_e2e.json`` (repo root; override with ``REPRO_BENCH_E2E_OUT``).

Small scale by default (``REPRO_BENCH_E2E_SCALE`` to override): the
loop re-simulates the campaign per round, and the stage proportions —
what the number is for — do not move with scale.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import pytest

from repro.campus.dataset import build_campus_dataset, resolve_scale
from repro.obs.benchreport import host_metadata
from repro.parallel import discover_shards, generate_dataset, ingest_shards

ROUNDS = 2
JOBS_MATRIX = (1, 4)
E2E_SEED = os.environ.get("REPRO_BENCH_E2E_SEED", "0")
E2E_SCALE = os.environ.get("REPRO_BENCH_E2E_SCALE", "small")
BENCH_OUT = os.environ.get(
    "REPRO_BENCH_E2E_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_e2e.json"))


@pytest.fixture(scope="module")
def e2e_bench(tmp_path_factory):
    scale = resolve_scale(E2E_SCALE)
    # Analyzer context (trust stores, CT index, disclosures) is built
    # once outside the timed loop: it is pipeline input, not pipeline.
    context = build_campus_dataset(seed=E2E_SEED, scale=scale)
    analyzer = context.analyzer()
    base = tmp_path_factory.mktemp("e2e")

    def run_loop(jobs: int) -> dict:
        out = str(base / f"jobs-{jobs}")
        shutil.rmtree(out, ignore_errors=True)
        start = time.perf_counter()
        generated = generate_dataset(out, seed=E2E_SEED, scale=scale,
                                     jobs=jobs)
        generated_at = time.perf_counter()
        ingest = ingest_shards(discover_shards(out), jobs=jobs)
        ingested_at = time.perf_counter()
        result = analyzer.analyze_chains(ingest.chains, jobs=jobs)
        done = time.perf_counter()
        assert ingest.missing_certs == 0
        assert result.chains
        return {
            "generate_seconds": generated_at - start,
            "ingest_seconds": ingested_at - generated_at,
            "analyze_seconds": done - ingested_at,
            "total_seconds": done - start,
            "ssl_rows": generated.ssl_rows,
            "chains": len(result.chains),
            "requested_jobs": jobs,
            "effective_generate_jobs": generated.jobs,
        }

    run_loop(1)  # warm the per-process generation context once
    runs = {}
    for jobs in JOBS_MATRIX:
        best = None
        for _ in range(ROUNDS):
            candidate = run_loop(jobs)
            if best is None or candidate["total_seconds"] < \
                    best["total_seconds"]:
                best = candidate
        runs[str(jobs)] = best

    numbers = {
        "dataset": {"scale": scale.name,
                    "ssl_rows": runs["1"]["ssl_rows"],
                    "chains": runs["1"]["chains"]},
        "cpu_count": os.cpu_count(),
        "host": host_metadata(
            requested_jobs=max(JOBS_MATRIX),
            effective_jobs=runs[str(max(JOBS_MATRIX))][
                "effective_generate_jobs"]),
        "rounds": ROUNDS,
        "pipeline": runs,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(numbers, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return numbers


def test_bench_file_written(e2e_bench):
    recorded = json.load(open(BENCH_OUT))
    serial = recorded["pipeline"]["1"]
    assert serial["total_seconds"] > 0
    assert serial["chains"] > 0
    stages = (serial["generate_seconds"] + serial["ingest_seconds"]
              + serial["analyze_seconds"])
    assert abs(stages - serial["total_seconds"]) < 0.05


def test_loop_output_invariant_under_jobs(e2e_bench):
    serial = e2e_bench["pipeline"]["1"]
    fanned = e2e_bench["pipeline"]["4"]
    assert fanned["ssl_rows"] == serial["ssl_rows"]
    assert fanned["chains"] == serial["chains"]

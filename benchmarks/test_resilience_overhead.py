"""Micro-benchmark: resilience must be free when nothing is failing.

Times the Zeek read path — the pipeline's per-row hot loop — bare versus
wrapped in the resilience machinery (a quarantine sink plus a fault
injector with every rate at zero) and asserts the wrapped read stays
within 5% of the bare one (plus a small absolute slack so sub-100ms
timings don't flap on noisy machines).  This pins the ISSUE's "no-fault
overhead ≤5%" budget: tolerant ingest may cost something when rows are
actually bad, never when they aren't.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_resilience_overhead.py -q``
"""

from __future__ import annotations

import time

import pytest

from repro.campus.dataset import cached_campus_dataset
from repro.faults import NO_FAULTS, FaultInjector
from repro.resilience import Quarantine
from repro.zeek.format import read_zeek_log

#: The ISSUE's budget, plus absolute slack for sub-100ms timings.
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.010
REPS = 5


@pytest.fixture(scope="module")
def ssl_log(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-logs")
    dataset = cached_campus_dataset(seed=0, scale="small")
    ssl_path, _ = dataset.write_zeek_logs(str(directory))
    return ssl_path


def _best_of(reps: int, read) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        read()
        best = min(best, time.perf_counter() - started)
    return best


def test_no_fault_read_overhead_within_budget(ssl_log):
    def bare():
        return read_zeek_log(ssl_log)

    def resilient():
        return read_zeek_log(ssl_log, quarantine=Quarantine(),
                             faults=FaultInjector(NO_FAULTS))

    # Both arms parse the same rows; warm the page cache + imports first.
    _, baseline_rows = bare()
    _, resilient_rows = resilient()
    assert resilient_rows == baseline_rows  # no-fault wrapping is invisible

    baseline = _best_of(REPS, bare)
    wrapped = _best_of(REPS, resilient)

    budget = baseline * (1.0 + MAX_RELATIVE_OVERHEAD) + ABSOLUTE_SLACK_S
    assert wrapped <= budget, (
        f"resilient={wrapped:.4f}s baseline={baseline:.4f}s "
        f"(budget {budget:.4f}s) — no-fault resilience overhead regressed")

"""Micro-benchmark: supervision must be free when nothing is failing.

Times a fixed CPU-bound task list dispatched through
:func:`~repro.parallel.supervisor.run_supervised` at ``jobs=1`` (the
engines' no-pool inline path, plus all the supervisor bookkeeping: task
ids, fingerprints, journal checks, metrics) against the same tasks in a
bare driver loop, and asserts the supervised dispatch stays within 5%
(plus a small absolute slack so sub-100ms timings don't flap).  The
numbers are persisted to ``BENCH_resilience.json`` (repo root; override
with ``REPRO_BENCH_RESILIENCE_OUT``) where ``bench-report --check``
enforces the same floor as ``supervisor.throughput_ratio >= 0.95``.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_supervisor_overhead.py -q``
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from repro.obs.benchreport import host_metadata
from repro.parallel.supervisor import run_supervised

#: The ISSUE's budget, plus absolute slack for small-timing noise.
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.010
TASKS = 400
REPS = 3
BENCH_OUT = os.environ.get(
    "REPRO_BENCH_RESILIENCE_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_resilience.json"))

_PAYLOAD = b"\x5a" * 8192


def work(task: int) -> str:
    """~0.5ms of real CPU per task — enough to time, too little to hide
    a per-task dispatch cost behind."""
    digest = hashlib.sha256(_PAYLOAD + str(task).encode())
    for _ in range(100):
        digest = hashlib.sha256(digest.digest() + _PAYLOAD)
    return digest.hexdigest()


def _best_of(reps: int, run) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def overhead_bench():
    tasks = list(range(TASKS))

    def bare():
        return [work(task) for task in tasks]

    def supervised():
        return run_supervised("bench", tasks, work, jobs=1).results

    # Same results either way; warm caches and imports before timing.
    assert supervised() == bare()

    baseline = _best_of(REPS, bare)
    dispatched = _best_of(REPS, supervised)

    numbers = {
        "supervisor": {
            "tasks": TASKS,
            "baseline_seconds": baseline,
            "supervised_seconds": dispatched,
            "throughput_ratio": baseline / dispatched,
        },
        "cpu_count": os.cpu_count(),
        "host": host_metadata(),
        "reps": REPS,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(numbers, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return numbers


def test_no_fault_dispatch_overhead_within_budget(overhead_bench):
    numbers = overhead_bench["supervisor"]
    budget = (numbers["baseline_seconds"] * (1.0 + MAX_RELATIVE_OVERHEAD)
              + ABSOLUTE_SLACK_S)
    assert numbers["supervised_seconds"] <= budget, (
        f"supervised={numbers['supervised_seconds']:.4f}s "
        f"baseline={numbers['baseline_seconds']:.4f}s "
        f"(budget {budget:.4f}s) — no-fault supervision overhead regressed")


def test_bench_file_feeds_the_report_gate(overhead_bench):
    recorded = json.load(open(BENCH_OUT))
    ratio = recorded["supervisor"]["throughput_ratio"]
    assert ratio > 0  # the gated metric exists at its documented path
    assert recorded["supervisor"]["baseline_seconds"] > 0
    assert recorded["host"]["cpu_count"] == os.cpu_count()

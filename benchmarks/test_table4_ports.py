"""Table 4 — port distribution per chain category."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.experiments import run_experiment


def test_table4_ports(benchmark, dataset, analysis, record):
    def port_distributions():
        cat = analysis.categorized
        return {
            "hybrid": cat.port_distribution(ChainCategory.HYBRID),
            "interception": cat.port_distribution(ChainCategory.INTERCEPTION),
            "nonpub": cat.port_distribution(ChainCategory.NON_PUBLIC_ONLY),
        }

    ports = benchmark.pedantic(port_distributions, rounds=5, iterations=1)

    exp = run_experiment("table4", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # Hybrid traffic is overwhelmingly 443 (97.21 % in the paper).
    hybrid = ports["hybrid"]
    assert hybrid.most_common(1)[0][0] == 443
    assert hybrid[443] / sum(hybrid.values()) > 0.90

    # Interception leads with Fortinet's 8013 and uses 443 for a minority.
    interception = ports["interception"]
    assert interception.most_common(1)[0][0] == 8013
    assert interception[443] / sum(interception.values()) < 0.40

    # Non-public traffic is diverse: 443 under half for single-cert-heavy mix.
    measured = exp.measured["ports"]
    single_top = dict(measured["nonpub-single"])
    assert single_top.get(443, 0.0) < 60.0
    assert 8888 in single_top or 33854 in single_top
    multi_top = dict(measured["nonpub-multi"])
    assert multi_top.get(443, 0.0) > 70.0

"""Table 5 — issuer–subject vs key–signature validation comparison."""

from __future__ import annotations

import pytest

from repro.campus.profiles import PAPER
from repro.experiments import run_experiment
from repro.experiments.table5 import DEFAULT_CORPUS_SIZE
from repro.validation import build_validation_corpus, compare_validators


@pytest.fixture(scope="module")
def corpus(dataset):
    return build_validation_corpus(DEFAULT_CORPUS_SIZE, seed=dataset.seed)


def test_table5_validation(benchmark, dataset, corpus, record):
    def compare():
        return compare_validators(corpus, disclosures=dataset.disclosures)

    result = benchmark.pedantic(compare, rounds=3, iterations=1)

    exp = run_experiment("table5", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # Both methods agree on singles.
    assert result.is_single == result.ks_single
    # The paper's structural relationships between the two columns:
    #   IS valid = KS valid + unrecognized + malformed (9,825 vs 9,821 + 3 + 1)
    assert result.is_valid == (result.ks_valid + result.ks_unrecognized
                               + (result.ks_broken - result.is_broken))
    #   KS broken = IS broken + the ASN.1-error chain (284 vs 283)
    assert result.ks_broken == result.is_broken + 1
    #   exactly 3 unrecognized-key chains, as in the paper
    assert result.ks_unrecognized == PAPER.validation_unrecognized
    # Mismatch positions align on every commonly-broken chain.
    assert result.position_agreements == result.position_comparisons
    # Broken share near the paper's 283/12,676 ~ 2.23 %.
    broken_share = 100.0 * result.is_broken / result.total
    assert 1.0 < broken_share < 4.0

"""Analysis scaling: the enrichment engine and the artifact cache.

Measures the legacy serial analysis (``jobs=None``) against the sharded
enrichment engine at ``jobs`` 1, 2, and 4 over one default-scale chain
map, then the artifact cache cold (compute + save) against warm (served
from disk), and persists every number to ``BENCH_analyze.json`` (repo
root; override with ``REPRO_BENCH_ANALYZE_OUT``) so CI can archive and
gate on it.

Two gates hold everywhere: a single-worker throughput floor, and the
warm artifact run at least 5x faster than a cold compute.  The
multi-core speedup assertion only runs where it is physically possible
(``os.cpu_count() >= 4``).  Note the engine at ``jobs=1`` is *not*
expected to beat the legacy serial stages — it eagerly computes both
``ChainStructure`` variants for every multi-certificate chain, work the
serial path defers — so no engine-vs-serial single-thread gate exists.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import matching
from repro.core.chain import aggregate_chains
from repro.obs.benchreport import host_metadata
from repro.parallel.analysis import DEFAULT_PARTITIONS, effective_analysis_jobs
from repro.resilience import ArtifactStore

ROUNDS = 3
JOBS_MATRIX = (1, 2, 4)
BENCH_OUT = os.environ.get(
    "REPRO_BENCH_ANALYZE_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_analyze.json"))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_cold(fn) -> float:
    """Best-of-rounds with the process-global match memo cleared first,
    so every round pays the full pair-matching cost."""
    def cold():
        matching._MATCH_MEMO.clear()
        fn()
    return min(_timed(cold) for _ in range(ROUNDS))


@pytest.fixture(scope="module")
def analysis_bench(dataset, tmp_path_factory):
    """Measure everything once, write BENCH_analyze.json, share numbers."""
    chains = aggregate_chains(dataset.joined())
    count = len(chains)

    serial_seconds = _best_cold(
        lambda: dataset.analyzer().analyze_chains(chains))
    engine_seconds = {
        jobs: _best_cold(
            lambda jobs=jobs: dataset.analyzer().analyze_chains(chains,
                                                                jobs=jobs))
        for jobs in JOBS_MATRIX}

    # Artifact cache: cold rounds get a fresh store each (compute + save);
    # warm rounds share one pre-primed store.
    base = tmp_path_factory.mktemp("artifact-bench")
    cold_stores = iter(ArtifactStore(str(base / f"cold-{i}"))
                       for i in range(ROUNDS))
    cold_seconds = _best_cold(
        lambda: dataset.analyzer().analyze_chains(chains, jobs=1,
                                                  artifacts=next(cold_stores)))
    warm_store = ArtifactStore(str(base / "warm"))
    dataset.analyzer().analyze_chains(chains, jobs=1, artifacts=warm_store)
    warm_seconds = min(
        _timed(lambda: dataset.analyzer().analyze_chains(
            chains, jobs=1, artifacts=warm_store))
        for _ in range(ROUNDS))

    numbers = {
        "dataset": {"chains": count},
        "cpu_count": os.cpu_count(),
        "host": host_metadata(
            requested_jobs=max(JOBS_MATRIX),
            effective_jobs=effective_analysis_jobs(max(JOBS_MATRIX))),
        "partitions": DEFAULT_PARTITIONS,
        "rounds": ROUNDS,
        "serial_legacy": {"seconds": serial_seconds,
                          "chains_per_second": count / serial_seconds},
        "engine": {
            str(jobs): {"seconds": seconds,
                        "chains_per_second": count / seconds,
                        "speedup_vs_serial": serial_seconds / seconds,
                        "requested_jobs": jobs,
                        "effective_jobs": effective_analysis_jobs(jobs)}
            for jobs, seconds in engine_seconds.items()},
        "artifact": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
        },
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(numbers, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return numbers


def test_bench_file_written(analysis_bench):
    recorded = json.load(open(BENCH_OUT))
    assert recorded["engine"]["1"]["chains_per_second"] > 0
    assert recorded["artifact"]["warm_speedup"] > 0


def test_single_worker_throughput_floor(analysis_bench):
    # ~1/3 of the observed ~14k chains/s on the calibration box: loose
    # enough for CI noise, tight enough to catch a quadratic regression.
    assert analysis_bench["engine"]["1"]["chains_per_second"] > 5_000


def test_warm_artifact_at_least_5x_faster_than_cold(analysis_bench):
    # The ISSUE gate: rehydrating derived state must beat recomputing by
    # a wide margin, or the cache is not earning its disk.
    assert analysis_bench["artifact"]["warm_speedup"] >= 5


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="multi-core speedup needs >= 4 CPUs")
def test_parallel_scaling_at_four_workers(analysis_bench):
    # Engine-vs-engine, not engine-vs-legacy: the serial stages skip the
    # eager structure pass, so the fair parallelism baseline is jobs=1.
    # Asserting a speedup only makes sense when the clamp actually let
    # more than one worker run — on a 1-CPU box "jobs=4" silently runs
    # inline and the ratio below would gate on hardware, not code.
    fanned_entry = analysis_bench["engine"]["4"]
    if fanned_entry["effective_jobs"] <= 1:
        pytest.skip("jobs clamp left a single effective worker")
    inline = analysis_bench["engine"]["1"]["seconds"]
    assert inline / fanned_entry["seconds"] > 1.15

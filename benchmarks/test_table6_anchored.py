"""Table 6 — non-public leaves anchored to public trust roots."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.hybrid import (
    CompletePathKind,
    EntityKind,
    HybridAnalyzer,
    HybridCategory,
)
from repro.experiments import run_experiment


def test_table6_anchored(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)
    analyzer = HybridAnalyzer(analysis.classifier, dataset.disclosures)

    def classify_entities():
        report = analyzer.analyze(chains)
        return report.table6_rows()

    rows = benchmark.pedantic(classify_entities, rounds=3, iterations=1)

    exp = run_experiment("table6", dataset)
    record(exp)
    print("\n" + exp.rendered)

    counts = {r["category"]: r["chains"] for r in rows}
    assert counts["Corporate"] == PAPER.anchored_corporate
    assert counts["Government"] == PAPER.anchored_government

    # CT-logging check (§4.2): every anchored non-public leaf is logged.
    report = analyzer.analyze(chains)
    anchored = [a for a in report.by_category(HybridCategory.COMPLETE_PATH_ONLY)
                if a.complete_kind is CompletePathKind.NON_PUBLIC_CHAINED_TO_PUBLIC]
    assert len(anchored) == PAPER.hybrid_nonpub_to_pub
    logged = sum(1 for a in anchored
                 if dataset.ct_index.contains_certificate(
                     a.chain.certificates[0]))
    assert logged == len(anchored), "all anchored leaves must be in CT"

    # 3 of the 26 carry expired leaves, the worst past 5 years (§4.2).
    from repro.scan.scanner import REVISIT_TIME
    from repro.campus.workload import STUDY_START
    expired = [a for a in anchored
               if a.chain.certificates[0].validity.is_expired(STUDY_START)]
    assert len(expired) == 3
    worst_gap_days = max(
        (STUDY_START - a.chain.certificates[0].validity.not_after).days
        for a in expired)
    assert worst_gap_days > 5 * 365

"""Generation scaling: the parallel engine and the compiled write path.

Measures the compiled row renderer against the legacy per-column closure
walk (single-thread, pure write path), then the full generation engine —
simulate + render + write — at ``jobs`` 1, 2, and 4, and persists every
number to ``BENCH_generate.json`` (repo root; override with
``REPRO_BENCH_GENERATE_OUT``) so CI can archive and gate on it.

Generation re-runs the whole simulation per round, so this benchmark
uses the small scale by default (``REPRO_BENCH_GENERATE_SCALE`` to
override) — scale changes move absolute numbers, not the compiled-vs-
legacy ratio or the jobs scaling the gates assert.  The multi-core
speedup assertion only runs where multi-core speedup is physically
possible and the clamp actually granted more than one worker.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import time

import pytest

from repro.campus.dataset import build_campus_dataset, resolve_scale
from repro.obs.benchreport import host_metadata
from repro.parallel.generate import generate_dataset
from repro.x509 import der
from repro.zeek.format import ZeekLogWriter
from repro.zeek.records import SSLRecord

ROUNDS = 3
JOBS_MATRIX = (1, 2, 4)
GEN_SEED = os.environ.get("REPRO_BENCH_GENERATE_SEED", "0")
GEN_SCALE = os.environ.get("REPRO_BENCH_GENERATE_SCALE", "small")
BENCH_OUT = os.environ.get(
    "REPRO_BENCH_GENERATE_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_generate.json"))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best(fn) -> float:
    return min(_timed(fn) for _ in range(ROUNDS))


@pytest.fixture(scope="module")
def generate_bench(tmp_path_factory):
    """Measure everything once, write BENCH_generate.json, share numbers."""
    scale = resolve_scale(GEN_SCALE)
    # The pure write path: identical pre-rendered rows through both
    # writer modes, so the ratio isolates the renderer + buffering win.
    dataset = build_campus_dataset(seed=GEN_SEED, scale=scale)
    ssl_rows = [record.to_row() for record in dataset.tap.ssl_records]

    def write_all(compiled: bool) -> None:
        sink = io.StringIO()
        with ZeekLogWriter(sink, "ssl", SSLRecord.FIELDS, SSLRecord.TYPES,
                           compiled=compiled) as writer:
            for row in ssl_rows:
                writer.write_row(row)

    write_compiled = _best(lambda: write_all(True))
    write_legacy = _best(lambda: write_all(False))

    # The DER component memos: encoding every distinct certificate with
    # all memos cleared (cold) vs with the shared name/extension blocks
    # already warm isolates exactly the win the part memos buy when the
    # whole-certificate memo misses.
    certificates = list({c: None for s in dataset.specs for c in s.chain})

    def encode_all(warm_parts: bool) -> None:
        der._DER_MEMO.clear()
        if not warm_parts:
            der._NAME_MEMO.clear()
            der._EXT_MEMO.clear()
        for certificate in certificates:
            der.encode_certificate_der(certificate)

    der_cold = _best(lambda: encode_all(False))
    der_part_warm = _best(lambda: encode_all(True))

    # The full engine: simulate + render + write, per jobs value.
    base = tmp_path_factory.mktemp("generate-scaling")
    engine_results = {}

    def run_engine(jobs: int) -> None:
        out = str(base / f"jobs-{jobs}")
        shutil.rmtree(out, ignore_errors=True)
        engine_results[jobs] = generate_dataset(
            out, seed=GEN_SEED, scale=scale, jobs=jobs)

    run_engine(1)  # warm the per-process generation context once
    engine_seconds = {jobs: _best(lambda jobs=jobs: run_engine(jobs))
                      for jobs in JOBS_MATRIX}
    legacy_engine_seconds = _best(lambda: generate_dataset(
        str(base / "legacy"), seed=GEN_SEED, scale=scale, jobs=1,
        compiled=False))

    rows = len(ssl_rows)
    total = engine_results[1].ssl_rows + engine_results[1].x509_rows
    numbers = {
        "dataset": {"ssl_rows": rows,
                    "x509_rows": engine_results[1].x509_rows,
                    "scale": scale.name},
        "cpu_count": os.cpu_count(),
        "host": host_metadata(
            requested_jobs=engine_results[max(JOBS_MATRIX)].requested_jobs,
            effective_jobs=engine_results[max(JOBS_MATRIX)].jobs),
        "shards": engine_results[1].shard_count,
        "rounds": ROUNDS,
        "write": {
            "compiled_seconds": write_compiled,
            "legacy_seconds": write_legacy,
            "compiled_rows_per_second": rows / write_compiled,
            "legacy_rows_per_second": rows / write_legacy,
            "compiled_over_legacy": write_legacy / write_compiled,
        },
        "der": {
            "certificates": len(certificates),
            "cold_seconds": der_cold,
            "part_warm_seconds": der_part_warm,
            "part_memo_speedup": der_cold / der_part_warm,
        },
        "engine_legacy_writer": {
            "seconds": legacy_engine_seconds,
            "rows_written_per_second": total / legacy_engine_seconds,
        },
        "engine": {
            str(jobs): {"seconds": seconds,
                        "rows_written_per_second": total / seconds,
                        "speedup_vs_single": engine_seconds[1] / seconds,
                        "requested_jobs": engine_results[jobs].requested_jobs,
                        "effective_jobs": engine_results[jobs].jobs}
            for jobs, seconds in engine_seconds.items()},
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(numbers, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return numbers


def test_bench_file_written(generate_bench):
    recorded = json.load(open(BENCH_OUT))
    assert recorded["write"]["compiled_rows_per_second"] > 0
    assert recorded["engine"]["1"]["rows_written_per_second"] > 0
    # The CPU clamp is part of the recorded contract: a 4-worker request
    # on a smaller box must report what actually ran.
    four = recorded["engine"]["4"]
    assert four["requested_jobs"] == 4
    assert four["effective_jobs"] <= (recorded["cpu_count"] or 1)


def test_compiled_write_path_beats_legacy_renderer(generate_bench):
    # The ISSUE gate: exec-compiled renderers + buffered block writes
    # must beat the per-column closure walk by >= 1.5x single-threaded.
    assert generate_bench["write"]["compiled_over_legacy"] >= 1.5


def test_der_part_memo_speedup(generate_bench):
    # Warm name/extension memos skip the component re-encode entirely on
    # certificates the whole-cert memo missed (~1.6x on the calibration
    # box; the floor sits at roughly half that margin).
    assert generate_bench["der"]["part_memo_speedup"] >= 1.25


def test_serial_rows_written_floor(generate_bench):
    # Loose floor (~half the calibration box) on the full simulate +
    # render + write loop: catches a quadratic regression anywhere in
    # the generation path, not just the renderer.
    assert generate_bench["engine"]["1"]["rows_written_per_second"] > 5_000


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="multi-core speedup needs >= 4 CPUs")
def test_parallel_scaling_at_four_workers(generate_bench):
    fanned = generate_bench["engine"]["4"]
    if fanned["effective_jobs"] <= 1:
        pytest.skip("jobs clamp left a single effective worker")
    assert fanned["speedup_vs_single"] > 1.15

"""Parallel ingestion scaling: engine vs the pre-engine serial path.

Measures the legacy serial pipeline (per-line interpreter reader, list
join, one aggregation pass) against the sharded engine at ``jobs`` 1, 2,
and 4 over the same corpus, and persists every number to
``BENCH_ingest.json`` (repo root; override with ``REPRO_BENCH_INGEST_OUT``)
so CI can archive and gate on it.

The multi-core speedup assertion only runs where multi-core speedup is
physically possible (``os.cpu_count() >= 4``); on smaller boxes the
numbers are still measured and recorded.  The compiled-codec win over the
legacy reader is asserted unconditionally — it is a single-thread
property.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import pytest

from repro.core.chain import aggregate_chains
from repro.obs.benchreport import host_metadata
from repro.parallel import discover_shards, ingest_shards, split_zeek_log
from repro.parallel.worker import _SSL_INTERN, _SSL_PROJECTION
from repro.zeek.columnar import read_zeek_log_columnar
from repro.zeek.format import read_zeek_log
from repro.zeek.records import SSLRecord, X509Record
from repro.zeek.tap import join_logs

ROUNDS = 3
COLUMNAR_ROUNDS = 9  # the 500k rows/s floor gate needs low-noise timing
SHARDS = 4
BENCH_OUT = os.environ.get(
    "REPRO_BENCH_INGEST_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "BENCH_ingest.json"))


def _best(fn, rounds: int = ROUNDS) -> float:
    return min(_timed(fn) for _ in range(rounds))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def ingest_bench(dataset, tmp_path_factory):
    """Measure everything once, write BENCH_ingest.json, share the numbers."""
    base = tmp_path_factory.mktemp("scaling")
    ssl_path, x509_path = dataset.write_zeek_logs(str(base / "whole"))
    shard_dir = base / "shards"
    split_zeek_log(ssl_path, str(shard_dir), SHARDS)
    shutil.copy(x509_path, shard_dir / "x509.log")
    shards = discover_shards(str(shard_dir))
    rows = len(dataset.ssl_records)

    def legacy_serial():
        _, ssl_rows = read_zeek_log(ssl_path, compiled=False)
        _, x509_rows = read_zeek_log(x509_path, compiled=False)
        joined = join_logs([SSLRecord.from_row(r) for r in ssl_rows],
                           [X509Record.from_row(r) for r in x509_rows])
        return aggregate_chains(joined)

    # Read-path measurements run first, before a minute of engine rounds
    # heats the box: the single-core floors are the tightest gates and
    # deserve the quietest window.  The columnar reader is measured in
    # its engine configuration: projected to the columns the fold
    # consumes, id columns interned.
    read_columnar = _best(
        lambda: read_zeek_log_columnar(ssl_path, intern=_SSL_INTERN,
                                       project=_SSL_PROJECTION),
        rounds=COLUMNAR_ROUNDS)
    read_compiled = _best(lambda: read_zeek_log(ssl_path, compiled=True))
    read_legacy = _best(lambda: read_zeek_log(ssl_path, compiled=False))
    serial_seconds = _best(legacy_serial)
    engine_results = {}

    def run_engine(jobs):
        engine_results[jobs] = ingest_shards(shards, jobs=jobs)

    engine_seconds = {
        jobs: _best(lambda jobs=jobs: run_engine(jobs))
        for jobs in (1, 2, SHARDS)}

    numbers = {
        "dataset": {"ssl_rows": rows,
                    "x509_rows": len(dataset.x509_records)},
        "cpu_count": os.cpu_count(),
        "host": host_metadata(
            requested_jobs=engine_results[SHARDS].requested_jobs,
            effective_jobs=engine_results[SHARDS].jobs),
        "shards": SHARDS,
        "rounds": ROUNDS,
        "serial_legacy": {"seconds": serial_seconds,
                          "rows_per_second": rows / serial_seconds},
        "engine": {
            str(jobs): {"seconds": seconds,
                        "rows_per_second": rows / seconds,
                        "speedup_vs_serial": serial_seconds / seconds,
                        "requested_jobs": engine_results[jobs].requested_jobs,
                        "effective_jobs": engine_results[jobs].jobs}
            for jobs, seconds in engine_seconds.items()},
        "read": {
            "compiled_seconds": read_compiled,
            "legacy_seconds": read_legacy,
            "columnar_seconds": read_columnar,
            "compiled_rows_per_second": rows / read_compiled,
            "legacy_rows_per_second": rows / read_legacy,
            "columnar_rows_per_second": rows / read_columnar,
            "compiled_over_legacy": read_legacy / read_compiled,
            "columnar_over_compiled": read_compiled / read_columnar,
        },
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(numbers, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return numbers


def test_bench_file_written(ingest_bench):
    recorded = json.load(open(BENCH_OUT))
    assert recorded["engine"]["1"]["rows_per_second"] > 0
    assert recorded["read"]["compiled_rows_per_second"] > 0
    # The CPU clamp is part of the recorded contract: a 4-worker request
    # on a smaller box must report what actually ran.
    four = recorded["engine"][str(SHARDS)]
    assert four["requested_jobs"] == SHARDS
    assert four["effective_jobs"] <= (recorded["cpu_count"] or 1)


def test_compiled_read_floor(ingest_bench):
    # Same 2x-the-old-30k-bar floor that benchmarks/test_throughput.py
    # enforces, but measured from disk through the full file path.
    assert ingest_bench["read"]["compiled_rows_per_second"] > 60_000
    assert ingest_bench["read"]["compiled_over_legacy"] > 1.2


def test_columnar_read_floor(ingest_bench):
    # Design target: >=500k rows/s single core, ~4x the compiled codec
    # (both reached on a quiet box; see PERFORMANCE.md).  The enforced
    # floors follow the compiled-reader convention above — roughly half
    # of typical — so shared-runner load swings cannot flake the gate;
    # bench-report --check applies the same levels.
    assert ingest_bench["read"]["columnar_rows_per_second"] > 250_000
    assert ingest_bench["read"]["columnar_over_compiled"] > 2.0


def test_engine_beats_legacy_serial_single_worker(ingest_bench):
    # jobs=1 isolates the single-thread wins (compiled codecs, streaming
    # join) from parallelism: the engine must already be ahead.
    assert ingest_bench["engine"]["1"]["speedup_vs_serial"] > 1.1


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="multi-core speedup needs >= 4 CPUs")
def test_parallel_scaling_at_four_workers(ingest_bench):
    assert ingest_bench["engine"][str(SHARDS)]["speedup_vs_serial"] > 1.5

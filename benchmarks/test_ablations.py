"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.core.matching import analyze_structure
from repro.experiments import run_experiment
from repro.validation import build_validation_corpus, compare_validators


def test_ablation_crosssign(benchmark, dataset, analysis, record):
    """Matching without cross-sign disclosures must not create false
    mismatches on the campus corpus — and the disclosure table must repair
    pairs when cross-signed material appears."""
    hybrid = analysis.categorized.chains(ChainCategory.HYBRID)

    def run_naive():
        return [analyze_structure(c.certificates, disclosures=None)
                for c in hybrid]

    benchmark.pedantic(run_naive, rounds=3, iterations=1)

    exp = run_experiment("ablation-crosssign", dataset)
    record(exp)
    print("\n" + exp.rendered)
    assert exp.measured["flipped"] == 0


def test_ablation_truststores(benchmark, dataset, record):
    """NSS-only classification (Zeek's default) reassigns the chains whose
    anchors live only in the Microsoft/Apple stores — quantifying why the
    paper expanded Zeek's validation (§3.2.1)."""
    def run_ablation():
        return run_experiment("ablation-truststores", dataset)

    exp = benchmark.pedantic(run_ablation, rounds=2, iterations=1)
    record(exp)
    print("\n" + exp.rendered)
    # Microsoft-only anchored hybrids (Federal PKI, KISA, ICP-Brasil)
    # change category under the narrow view.
    assert exp.measured["moved"] > 0


def test_ablation_blindspot(benchmark, dataset, record):
    """Impersonated chains (names chain, wrong key) quantify Appendix D's
    stated limitation of issuer–subject validation."""
    corpus = build_validation_corpus(total=320, seed=dataset.seed,
                                     impersonated=16)

    def compare():
        return compare_validators(corpus, disclosures=dataset.disclosures)

    result = benchmark.pedantic(compare, rounds=3, iterations=1)

    exp = run_experiment("ablation-blindspot", dataset)
    record(exp)
    print("\n" + exp.rendered)
    # The issuer–subject method misses every impersonation; the
    # key–signature method catches them all.
    assert result.ks_broken - result.is_broken >= 16


def test_ablation_leafrule(benchmark, dataset, analysis, record):
    """Removing §4.2's valid-leaf requirement collapses the no-path group:
    matched-but-leafless runs start counting as complete paths."""
    from repro.core.categorization import ChainCategory
    from repro.core.hybrid import HybridAnalyzer, HybridCategory

    hybrid = analysis.categorized.chains(ChainCategory.HYBRID)
    relaxed_analyzer = HybridAnalyzer(analysis.classifier,
                                      dataset.disclosures,
                                      require_leaf=False)

    def run_relaxed():
        return relaxed_analyzer.analyze(hybrid)

    relaxed = benchmark.pedantic(run_relaxed, rounds=3, iterations=1)

    exp = run_experiment("ablation-leafrule", dataset)
    record(exp)
    print("\n" + exp.rendered)

    strict_no_path = len(analysis.hybrid.by_category(
        HybridCategory.NO_COMPLETE_PATH))
    relaxed_no_path = len(relaxed.by_category(
        HybridCategory.NO_COMPLETE_PATH))
    # The rule is load-bearing: a large bloc of no-path chains would be
    # misfiled as contains-complete without it.
    assert relaxed_no_path < strict_no_path
    assert exp.measured["moved"] > 50

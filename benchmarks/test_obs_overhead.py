"""Micro-benchmark: the observability layer must stay near-free.

Runs the full Figure-2 analysis over the small campus dataset twice —
once with metrics + tracing disabled (baseline) and once instrumented —
and asserts the instrumented pipeline stays within 10% of the baseline
(plus a small absolute slack so sub-100ms timings don't flap on noisy
machines).  This guards every future PR against quietly putting locks or
label lookups on the per-row hot path.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -q``
"""

from __future__ import annotations

import time

from repro.campus.dataset import cached_campus_dataset
from repro.obs.metrics import disabled
from repro.obs.tracing import get_tracer

#: Allowed relative overhead (the ISSUE's budget) and absolute slack.
MAX_RELATIVE_OVERHEAD = 0.10
ABSOLUTE_SLACK_S = 0.010
REPS = 5


def _run_once(dataset) -> None:
    dataset.analyzer().analyze_connections(dataset.joined())


def _best_of(reps: int, dataset) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        _run_once(dataset)
        best = min(best, time.perf_counter() - started)
    return best


def test_instrumentation_overhead_within_budget():
    dataset = cached_campus_dataset(seed=0, scale="small")
    dataset.joined()     # warm the join cache: both arms time only analysis
    _run_once(dataset)   # warmup pass (imports, allocator, caches)

    tracer = get_tracer()
    with disabled():
        tracer.enabled = False
        try:
            baseline = _best_of(REPS, dataset)
        finally:
            tracer.enabled = True
    instrumented = _best_of(REPS, dataset)

    budget = baseline * (1.0 + MAX_RELATIVE_OVERHEAD) + ABSOLUTE_SLACK_S
    assert instrumented <= budget, (
        f"instrumented={instrumented:.4f}s baseline={baseline:.4f}s "
        f"(budget {budget:.4f}s) — observability overhead regressed")

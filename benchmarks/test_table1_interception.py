"""Table 1 — TLS interception issuer categories.

Regenerates the paper's Table 1 rows (issuers / % connections / client IPs
per category) and times the interception-detection stage.
"""

from __future__ import annotations

from repro.campus.profiles import PAPER, build_vendor_directory
from repro.core.classification import CertificateClassifier
from repro.core.interception import InterceptionDetector
from repro.experiments import run_experiment


def test_table1_interception(benchmark, dataset, analysis, record):
    def detect():
        detector = InterceptionDetector(
            CertificateClassifier(dataset.registry), dataset.ct_index,
            build_vendor_directory())
        return detector.detect(analysis.chains.values())

    report = benchmark.pedantic(detect, rounds=3, iterations=1)

    result = run_experiment("table1", dataset)
    record(result)
    print("\n" + result.rendered)

    # Shape assertions: all 80 vendors found, category counts exact,
    # Security & Network dominates connections like the paper's 94.74 %.
    assert report.vendor_count() == PAPER.interception_issuers
    rows = {r["category"]: r for r in report.category_table(analysis.chains)}
    for category, issuers, _pct, _ips in PAPER.interception_issuer_categories:
        assert rows[category]["issuers"] == issuers, category
    assert rows["Security & Network"]["pct_connections"] > 80.0
    assert rows["Security & Network"]["client_ips"] > \
        rows["Business & Corporate"]["client_ips"]

"""Table 7 — taxonomy of hybrid chains without a complete matched path."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.hybrid import HybridAnalyzer
from repro.experiments import run_experiment


def test_table7_nopath(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)
    analyzer = HybridAnalyzer(analysis.classifier, dataset.disclosures)

    def taxonomy():
        return analyzer.analyze(chains).table7_rows()

    rows = benchmark.pedantic(taxonomy, rounds=3, iterations=1)

    exp = run_experiment("table7", dataset)
    record(exp)
    print("\n" + exp.rendered)

    measured = {r["category"]: r["chains"] for r in rows}
    for category, count in PAPER.no_path_taxonomy:
        assert measured[category] == count, category
    assert sum(measured.values()) == PAPER.hybrid_no_path

    # The 56-chain sub-finding: public leaves missing their intermediate.
    report = analyzer.analyze(chains)
    missing = report.missing_issuer_stats()
    assert missing["chains"] == PAPER.no_path_public_leaf_missing_issuer
    # Their connections establish at roughly the category's ~56 % rate.
    assert 45.0 < missing["established_pct"] < 70.0

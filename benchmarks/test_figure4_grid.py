"""Figure 4 — per-position structure grid of the 70 contains-complete
hybrid chains."""

from __future__ import annotations

from repro.campus.profiles import PAPER
from repro.core.categorization import ChainCategory
from repro.core.hybrid import CellLabel, HybridAnalyzer
from repro.experiments import run_experiment


def test_figure4_grid(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.HYBRID)
    analyzer = HybridAnalyzer(analysis.classifier, dataset.disclosures)

    def build_grid():
        return analyzer.analyze(chains).figure4_grid()

    grid = benchmark.pedantic(build_grid, rounds=3, iterations=1)

    exp = run_experiment("figure4", dataset)
    record(exp)
    print("\n" + exp.rendered)

    assert len(grid) == PAPER.hybrid_contains_complete
    counts = exp.measured["label_counts"]
    # Every chain contributes a public complete-path cell (the valid core).
    assert counts.get(CellLabel.PUB_COMPLETE.value, 0) >= 3 * 50
    # Unnecessary certificates appear as singleton cells.
    singles = (counts.get(CellLabel.NON_PUB_SINGLE.value, 0)
               + counts.get(CellLabel.PUB_SINGLE.value, 0)
               + counts.get(CellLabel.SINGLE_LEAF.value, 0))
    assert singles >= PAPER.hybrid_contains_complete
    # Columns are sorted tallest-first for rendering, like the figure.
    heights = [len(column) for column in grid]
    assert heights == sorted(heights, reverse=True)
    # Every cell label is from the figure's legend.
    legend = {label.value for label in CellLabel}
    for column in exp.measured["grid"]:
        assert set(column) <= legend

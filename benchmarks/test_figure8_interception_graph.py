"""Figure 8 / Appendix I — complex PKI structures in interception chains."""

from __future__ import annotations

from repro.core.categorization import ChainCategory
from repro.core.structures import build_issuance_graph, complex_intermediates
from repro.experiments import run_experiment


def test_figure8_interception_graph(benchmark, dataset, analysis, record):
    chains = analysis.categorized.chains(ChainCategory.INTERCEPTION)

    def build():
        graph = build_issuance_graph(chains)
        return graph, complex_intermediates(graph)

    graph, complex_nodes = benchmark.pedantic(build, rounds=3, iterations=1)

    exp = run_experiment("figure8", dataset)
    record(exp)
    print("\n" + exp.rendered)

    # The regional-hub vendors (Zscaler, Fortinet) create complex
    # structures: a hub intermediate linked to >= 3 other intermediates.
    assert len(complex_nodes) >= 1
    labels = {graph.nodes[n]["label"] for n in complex_nodes}
    assert any("Hub" in label for label in labels)
    # Interception graphs are larger than the hybrid one: per-host minted
    # leaves hang off a few appliance intermediates (high fan-out).
    fan_out = max((graph.out_degree(n) for n in graph), default=0)
    assert fan_out >= 5

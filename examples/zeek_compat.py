#!/usr/bin/env python
"""Interoperating with real Zeek deployments, old and new.

Three compatibility features in one walkthrough:

1. **DPD border gating** — mixed raw traffic (TLS + HTTP + SSH + DNS) goes
   through the byte-level detector; only TLS reaches the logs, regardless
   of port (how the paper's dataset caught TLS on port 8013/33854).
2. **Legacy Zeek 3.x layout** — the modern fingerprint-keyed logs are
   converted to the ssl → files → x509 fuid triple and joined back,
   proving the analyzer handles either generation of Zeek output.
3. **PEM export** — any simulated chain renders as real, parseable X.509
   DER for external tooling (`openssl x509 -text` would accept it).

Run:  python examples/zeek_compat.py
"""

from cryptography import x509 as cx509

from repro.campus import build_campus_dataset
from repro.core.chain import aggregate_chains
from repro.x509.der import certificate_to_pem
from repro.x509.pem import decode_pem_bundle
from repro.zeek import join_legacy_logs, join_logs, to_legacy_logs


def main() -> None:
    # --- 1. DPD gating: build the campus with 30% non-TLS noise ----------
    dataset = build_campus_dataset(seed=21, scale="small", noise_ratio=0.3)
    sensor = dataset.sensor
    print(f"border sensor: {sensor.flows_seen:,} flows seen, "
          f"{sensor.tls_flows:,} TLS (logged), "
          f"{sensor.skipped_flows:,} non-TLS (skipped), "
          f"SNI byte/record mismatches: {sensor.sni_mismatches}")

    # --- 2. legacy three-way join -----------------------------------------------
    legacy_ssl, files, legacy_x509 = to_legacy_logs(
        dataset.ssl_records, dataset.x509_records)
    print(f"\nlegacy layout: {len(legacy_ssl):,} ssl rows, "
          f"{len(files):,} files rows (one per certificate transfer), "
          f"{len(legacy_x509):,} fuid-keyed x509 rows")
    modern = aggregate_chains(join_logs(dataset.ssl_records,
                                        dataset.x509_records))
    legacy = aggregate_chains(join_legacy_logs(legacy_ssl, files,
                                               legacy_x509))
    assert set(modern) == set(legacy)
    print(f"modern and legacy joins agree on all {len(modern):,} distinct "
          f"chains")

    # --- 3. PEM export of a simulated chain -------------------------------------
    chain = next(iter(modern.values())).certificates
    pem = certificate_to_pem(chain[0])
    parsed = cx509.load_der_x509_certificate(decode_pem_bundle(pem)[0])
    print(f"\nexported leaf parses with the cryptography package:")
    print(f"  subject: {parsed.subject.rfc4514_string()}")
    print(f"  issuer:  {parsed.issuer.rfc4514_string()}")
    print(f"  serial:  {parsed.serial_number:x}")
    print(f"  valid:   {parsed.not_valid_before_utc.date()} → "
          f"{parsed.not_valid_after_utc.date()}")


if __name__ == "__main__":
    main()

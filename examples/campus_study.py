#!/usr/bin/env python
"""The full measurement study, end to end, through real Zeek log files.

This example does what the paper's pipeline does, including the round trip
through on-disk Zeek ASCII logs: simulate the campus → write ssl.log /
x509.log → parse them back → join → analyze → print every §3–§4 statistic.

Run:  python examples/campus_study.py [--scale small|default] [--seed N]
"""

import argparse
import tempfile

from repro.campus import build_campus_dataset, build_vendor_directory
from repro.core import ChainCategory, ChainStructureAnalyzer, render_table
from repro.core.hybrid import HybridCategory
from repro.zeek import SSLRecord, X509Record, join_logs, read_zeek_log


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small",
                        choices=("small", "default"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = build_campus_dataset(seed=args.seed, scale=args.scale)

    # --- write and re-read genuine Zeek ASCII logs -------------------------
    with tempfile.TemporaryDirectory() as logdir:
        ssl_path, x509_path = dataset.write_zeek_logs(logdir)
        print(f"wrote {ssl_path} and {x509_path}")
        _, ssl_rows = read_zeek_log(ssl_path)
        _, x509_rows = read_zeek_log(x509_path)
    ssl_records = [SSLRecord.from_row(row) for row in ssl_rows]
    x509_records = [X509Record.from_row(row) for row in x509_rows]
    joined = join_logs(ssl_records, x509_records)
    print(f"parsed {len(ssl_records):,} SSL rows / "
          f"{len(x509_records):,} X509 rows\n")

    # --- the Figure 2 pipeline over parsed logs ---------------------------------
    analyzer = ChainStructureAnalyzer(
        dataset.registry, ct_index=dataset.ct_index,
        vendor_directory=build_vendor_directory(),
        disclosures=dataset.disclosures)
    result = analyzer.analyze_connections(joined)

    # Table 2 -----------------------------------------------------------------
    rows = [[r["category"], f"{r['chains']:,}", f"{r['connections']:,}",
             f"{r['client_ips']:,}"]
            for r in result.categorized.summary_rows()]
    print(render_table(["category", "chains", "connections", "client IPs"],
                       rows, title="Table 2 — chain categories"))

    # Table 1 -----------------------------------------------------------------
    rows = [[r["category"], r["issuers"], f"{r['pct_connections']:.2f}%",
             f"{r['client_ips']:,}"]
            for r in result.interception.category_table(result.chains)]
    print("\n" + render_table(
        ["category", "issuers", "% connections", "client IPs"], rows,
        title="Table 1 — interception issuer categories"))

    # Figure 1 ----------------------------------------------------------------
    distributions = result.length_distributions()
    rows = []
    for category in ChainCategory:
        dist = distributions[category]
        rows.append([category.value, dist.total,
                     dist.dominant_length() or "-",
                     f"{dist.cumulative_fraction_at(3):.2f}"])
    print("\n" + render_table(
        ["category", "chains", "dominant length", "cum. frac ≤3"], rows,
        title="Figure 1 — chain lengths"))

    # Table 3 -----------------------------------------------------------------
    rows = [[r["category"], r["subcategory"], r["chains"]]
            for r in result.hybrid.table3_rows()]
    print("\n" + render_table(["category", "subcategory", "chains"], rows,
                              title="Table 3 — hybrid chains"))
    for category in HybridCategory:
        rate = result.hybrid.establishment_rate(category)
        print(f"  established ({category.value}): {rate:.2f}%")

    # §4.3 --------------------------------------------------------------------
    singles = result.single_cert_stats(ChainCategory.NON_PUBLIC_ONLY)
    print(f"\n§4.3: {singles.share_of_category:.1f}% of non-public chains "
          f"are single-certificate; {singles.self_signed_pct:.1f}% of those "
          f"self-signed; {singles.no_sni_connection_pct:.1f}% of their "
          f"connections lack SNI")
    for cluster in result.dga_clusters:
        low, high = cluster.validity_range_days()
        print(f"DGA cluster {cluster.template}: {len(cluster.chains)} chains, "
              f"{cluster.connections:,} connections, validity {low}-{high} "
              f"days")


if __name__ == "__main__":
    main()

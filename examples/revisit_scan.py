#!/usr/bin/env python
"""The §5 retrospective: evolve the 2021 fleet to 2024, rescan, compare.

Run:  python examples/revisit_scan.py
"""

from repro.campus import build_campus_dataset
from repro.core import render_table
from repro.scan import evolve_fleet, render_showcerts, run_revisit
from repro.scan.evolution import DISPOSITION_TO_PUBLIC_LE


def main() -> None:
    dataset = build_campus_dataset(seed=11, scale="small")
    fleet = evolve_fleet(dataset, seed=11)

    # Peek at one migrated server through the scanner's eyes.
    migrated = next(s for s in fleet.hybrid
                    if s.disposition == DISPOSITION_TO_PUBLIC_LE)
    print(f"server {migrated.server_id} ({migrated.hostname}) in 2021 "
          f"delivered a {len(migrated.previous_specs[0].chain)}-certificate "
          f"hybrid chain; in 2024 the scanner sees:\n")
    print(render_showcerts(migrated.new_chain, sni=migrated.hostname or ""))

    report = run_revisit(dataset, seed=11, fleet=fleet)
    rows = [
        ["hybrid servers reachable",
         f"{report.hybrid_reachable}/{report.hybrid_total} "
         f"({report.hybrid_reachable_pct:.1f}%)"],
        ["→ now public-DB-only",
         f"{report.hybrid_to_public} "
         f"(Let's Encrypt: {report.hybrid_to_public_lets_encrypt})"],
        ["→ now non-public-only", report.hybrid_to_nonpub],
        ["→ still hybrid",
         f"{report.hybrid_still_hybrid} "
         f"({report.still_complete_clean} clean / "
         f"{report.still_complete_unnecessary} with junk / "
         f"{report.still_no_path} no path)"],
        ["divergent chains (Chrome ok / OpenSSL ok)",
         f"{report.divergent_browser_ok} / {report.divergent_strict_ok} "
         f"of {report.divergent_chains}"],
        ["non-public servers scanned", report.nonpub_scanned],
        ["→ still non-public", report.nonpub_still_nonpub],
        ["→ now multi-certificate",
         f"{report.nonpub_now_multi} ({report.nonpub_now_multi_pct:.1f}%)"],
        ["→ new multi chains complete",
         f"{report.nonpub_multi_complete_pct:.1f}%"],
    ]
    print("\n" + render_table(["metric", "value"], rows,
                              title="§5 revisit (November 2024)"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Interception audit: detect a TLS-intercepting middlebox from traffic.

Demonstrates §3.2.1's detection method in isolation: a corporate appliance
re-signs connections to a public site; the monitor compares the observed
issuer against CT's record for the domain and flags the mismatch.

Run:  python examples/interception_audit.py
"""

from datetime import datetime, timezone

from repro.core import (
    CertificateClassifier,
    InterceptionDetector,
    ObservedChain,
    VendorDirectory,
)
from repro.ct import CTLog, CrtShIndex
from repro.tls import build_middlebox
from repro.truststores import build_public_pki
from repro.x509 import CertificateFactory, name


def main() -> None:
    pki = build_public_pki(seed=1)
    factory = CertificateFactory(seed=9)

    # The genuine site: a Let's Encrypt chain, logged in CT as required.
    r3 = pki.ca("lets_encrypt").intermediates["R3"]
    real_leaf = factory.leaf(r3, name("payroll.example.com"),
                             dns_names=["payroll.example.com"])
    ct_log = CTLog("demo-log",
                   accepted_roots=[ca.root.certificate
                                   for ca in pki.cas.values()])
    ct_log.add_chain([real_leaf, r3.certificate,
                      pki.ca("lets_encrypt").root.certificate])
    ct_index = CrtShIndex([ct_log])
    print(f"CT log holds {len(ct_log)} entry for payroll.example.com "
          f"(issuer: {real_leaf.issuer.common_name})")

    # The appliance in the corporate network substitutes its own chain.
    appliance = build_middlebox("AcmeSec Gateway", "Business & Corporate",
                                seed=3)
    substitute = appliance.intercept((real_leaf,), "payroll.example.com")
    print("\nChain observed at the monitor (substitute):")
    for cert in substitute:
        print(f"  s={cert.subject.rfc4514()}")
        print(f"  i={cert.issuer.rfc4514()}")

    # What the campus monitor aggregates for this server.
    observed = ObservedChain(substitute)
    for i in range(25):
        observed.usage.record(
            established=True, client_ip=f"10.1.0.{i % 7}",
            server_ip="203.0.113.50", port=443,
            sni="payroll.example.com",
            ts=datetime(2021, 1, 1, tzinfo=timezone.utc).timestamp() + i)

    # Detection: non-public leaf issuer + CT disagreement = interception.
    directory = VendorDirectory([("acmesec", "AcmeSec",
                                  "Business & Corporate")])
    detector = InterceptionDetector(CertificateClassifier(pki.registry),
                                    ct_index, directory)
    report = detector.detect([observed])

    print(f"\nflagged issuers: {report.issuer_count}")
    for issuer in report.issuers:
        print(f"  vendor={issuer.vendor!r} category={issuer.category!r}")
        print(f"  issuer DN: {issuer.issuer.rfc4514()}")
    table = report.category_table({observed.key: observed})
    for row in table:
        if row["issuers"]:
            print(f"  {row['category']}: {row['issuers']} issuer(s), "
                  f"{row['pct_connections']:.0f}% of flagged connections, "
                  f"{row['client_ips']} client IPs")


if __name__ == "__main__":
    main()

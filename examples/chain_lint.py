#!/usr/bin/env python
"""chain_lint: check a PEM chain file the way the paper checks chains.

Give it a PEM bundle (as produced by ``openssl s_client -showcerts``) and
it reports, per adjacent pair, both the issuer–subject verdict (Appendix
D.1) and the key–signature verdict (Appendix D.2), plus unnecessary-
certificate attribution.  With no argument it lints a generated demo chain
containing a deliberate fault.

Run:  python examples/chain_lint.py [chain.pem]
"""

import sys

from cryptography import x509 as cx509

from repro.core import analyze_structure, attribute_unnecessary
from repro.validation import (
    validate_issuer_subject,
    validate_key_signature,
)
from repro.x509 import name
from repro.x509.pem import (
    CryptoChainBuilder,
    decode_pem_bundle,
    encode_pem_bundle,
    crypto_cert_to_record,
    FaultType,
)


def demo_bundle() -> str:
    """A 3-cert chain whose leaf was signed with the wrong key."""
    builder = CryptoChainBuilder()
    chain = builder.build_chain(
        [name("demo.example", o="Demo"), name("Demo CA", o="Demo"),
         name("Demo Root", o="Demo")],
        fault=FaultType.WRONG_KEY, fault_position=0)
    return encode_pem_bundle(chain)


def main() -> int:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            bundle = handle.read()
        source = sys.argv[1]
    else:
        bundle = demo_bundle()
        source = "generated demo chain (leaf signed with wrong key)"

    ders = decode_pem_bundle(bundle)
    if not ders:
        print("no certificates found in input", file=sys.stderr)
        return 1
    print(f"linting {len(ders)} certificate(s) from {source}\n")

    records = []
    for i, der in enumerate(ders):
        try:
            cert = cx509.load_der_x509_certificate(der)
        except ValueError as exc:
            print(f"  [{i}] UNPARSEABLE: {exc}")
            records.append(None)
            continue
        record = crypto_cert_to_record(cert)
        records.append(record)
        print(f"  [{i}] s: {record.subject.rfc4514()}")
        print(f"      i: {record.issuer.rfc4514()}")

    parsed = [r for r in records if r is not None]
    names = [(r.subject, r.issuer) for r in parsed]
    is_result = validate_issuer_subject(names) if names else None
    ks_result = validate_key_signature(ders)

    print(f"\nissuer–subject verdict : "
          f"{is_result.verdict.value if is_result else 'n/a'}"
          + (f" (mismatched pairs at {list(is_result.mismatch_positions)})"
             if is_result and is_result.mismatch_positions else ""))
    print(f"key–signature verdict  : {ks_result.verdict.value}"
          + (f" (failing pairs at {list(ks_result.failure_positions)})"
             if ks_result.failure_positions else "")
          + (f" — {ks_result.detail}" if ks_result.detail else ""))
    if is_result and is_result.ok and not ks_result.ok:
        print("\n⚠ names chain but signatures do not — the issuer–subject "
              "blind spot (Appendix D limitation)")

    if len(parsed) == len(records):
        structure = analyze_structure(parsed)
        findings = attribute_unnecessary(structure)
        if findings:
            print("\nunnecessary certificates:")
            for finding in findings:
                print(f"  {finding.describe()}")
    # Exit 2 signals a broken user-supplied chain; the built-in demo chain
    # is broken on purpose, so it exits 0.
    if len(sys.argv) <= 1:
        return 0
    return 0 if ks_result.ok else 2


if __name__ == "__main__":
    sys.exit(main())

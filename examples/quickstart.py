#!/usr/bin/env python
"""Quickstart: simulate a small campus, run the chain analyzer, read results.

Run:  python examples/quickstart.py
"""

from repro.campus import build_campus_dataset
from repro.core import ChainCategory, analyze_structure, render_table


def main() -> None:
    # 1. Build a small synthetic campus: a public Web PKI + CT logs, a
    #    server population (public, non-public, hybrid, intercepted), and a
    #    year of TLS connections observed at the border.
    dataset = build_campus_dataset(seed=42, scale="small")
    print(f"simulated {dataset.connection_count:,} connections, "
          f"{dataset.certificate_count:,} distinct certificates\n")

    # 2. Run the paper's full pipeline (Figure 2): classification →
    #    interception detection → categorisation → structure analysis.
    result = dataset.analyze()

    rows = [[r["category"], f"{r['chains']:,}", f"{r['connections']:,}",
             f"{r['client_ips']:,}"]
            for r in result.categorized.summary_rows()]
    print(render_table(["category", "chains", "connections", "client IPs"],
                       rows, title="Chain categories (paper Table 2 shape)"))

    # 3. Inspect one hybrid chain's structure the way §4.2 does.
    hybrid = result.categorized.chains(ChainCategory.HYBRID)
    chain = next(c for c in hybrid if c.length >= 4)
    structure = analyze_structure(chain.certificates,
                                  disclosures=dataset.disclosures)
    print("\nOne hybrid chain, bottom-up:")
    for i, cert in enumerate(chain.certificates):
        marker = "✓" if (structure.best_path
                         and i in structure.best_path.indices()) else "✗"
        print(f"  [{marker}] {cert.short_name()}  "
              f"(issuer: {cert.issuer.common_name or cert.issuer.rfc4514()})")
    print(f"  complete matched path: {structure.is_complete_matched_path}")
    print(f"  unnecessary certificates: {len(structure.unnecessary_indices)}")
    print(f"  mismatch ratio: {structure.mismatch_ratio:.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The §5 / §6.1 validation divergence, reproduced on one chain.

A server delivers a perfectly valid Let's Encrypt path **plus** the staging
placeholder certificate its renewal tooling left behind (`Fake LE
Intermediate X1` — Appendix F.2).  Chrome-style validation succeeds because
it builds a path from its own trust store and ignores the junk; strict
presented-chain validation (OpenSSL-style) rejects the same chain.

Run:  python examples/validation_divergence.py
"""

from datetime import datetime, timezone

from repro.core import analyze_structure, attribute_unnecessary
from repro.tls import BrowserPolicy, StrictPresentedChainPolicy
from repro.truststores import build_public_pki
from repro.x509 import CertificateFactory, name


def main() -> None:
    pki = build_public_pki(seed=5)
    factory = CertificateFactory(seed=5)
    le = pki.ca("lets_encrypt")
    when = datetime(2021, 3, 1, tzinfo=timezone.utc)

    leaf = factory.leaf(le.intermediates["R3"], name("blog.example.org"),
                        dns_names=["blog.example.org"])
    staging_junk = factory.mismatched_pair_cert(
        name("Fake LE Root X1"), name("Fake LE Intermediate X1"))
    chain = (leaf, le.intermediates["R3"].certificate,
             le.root.certificate, staging_junk)

    print("Delivered chain:")
    for cert in chain:
        print(f"  {cert.short_name():30s} issued by "
              f"{cert.issuer.common_name}")

    # Structural view (§4.2): a complete matched path + one junk cert.
    structure = analyze_structure(chain)
    print(f"\ncomplete matched path found: "
          f"{structure.contains_complete_matched_path}")
    for finding in attribute_unnecessary(structure, pki.registry):
        print(f"unnecessary: {finding.describe()}")

    # Client views (§5): the same chain, two verdicts.
    browser = BrowserPolicy(pki.registry).validate(chain, at=when)
    strict = StrictPresentedChainPolicy(pki.registry).validate(chain, at=when)
    print(f"\nChrome-style (local trust store):  "
          f"{'ACCEPTED' if browser.ok else 'REJECTED'} "
          f"({browser.status.value})")
    print(f"OpenSSL-style (presented chain):   "
          f"{'ACCEPTED' if strict.ok else 'REJECTED'} "
          f"({strict.status.value}: {strict.detail})")
    assert browser.ok and not strict.ok
    print("\n→ the §6.1 hazard: availability depends on which client "
          "connects.")


if __name__ == "__main__":
    main()
